"""Experiment runners: one entry point per simulation-backed comparison.

:func:`run_policy` is the single place a dataset + policy + config turn into
a :class:`~repro.core.accounting.RunResult`; it is a thin wrapper over the
scenario layer (:mod:`repro.analysis.scenarios`), which every benchmark,
figure driver and CLI command also goes through — so all comparisons share
detectors, codec, and scoring.  Figure-specific drivers (reference-age
CDFs, uplink ladders, constellation sweeps) live in
:mod:`repro.analysis.figures`.

Runs go through the persistent experiment store when one is active
(``REPRO_STORE``; see :mod:`repro.store`): a :class:`DatasetSpec`-named
scenario that was already simulated is a pure cache read.  Scenarios
named by an already-built dataset are not content-addressable and always
simulate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.scenarios import (
    POLICY_NAMES,
    DatasetSpec,
    ScenarioSpec,
)
from repro.core.accounting import RunResult
from repro.core.config import EarthPlusConfig
from repro.datasets.generator import SyntheticDataset
from repro.orbit.links import FluctuationModel
from repro.store.runner import ENV_DEFAULT, run_scenario_cached

__all__ = [
    "POLICY_NAMES",
    "run_policy",
    "PolicyComparison",
    "compare_policies",
]


def run_policy(
    dataset: SyntheticDataset | DatasetSpec,
    policy: str,
    config: EarthPlusConfig | None = None,
    uplink_bytes_per_contact: int | None = None,
    downlink_bytes_per_contact: int | None = None,
    fluctuation: FluctuationModel | None = None,
    downlink_severity: float = 0.0,
    ground_detector_for_scoring: bool = True,
    seed: int = 0,
    store=ENV_DEFAULT,
) -> RunResult:
    """Simulate ``dataset`` under one compression policy.

    Args:
        dataset: A synthetic dataset from :mod:`repro.datasets`, or a
            :class:`DatasetSpec` (preferred: spec-named runs are
            content-addressable, so repeats become store reads).
        policy: One of ``earthplus``, ``kodan``, ``satroi``, ``naive``.
        config: Earth+ tunables (shared knobs also steer baselines).
        uplink_bytes_per_contact: Override the Table-1 default uplink
            capacity (only Earth+ uses the uplink).
        downlink_bytes_per_contact: Override the Table-1 default downlink
            capacity (small values engage quality-layer shedding).
        fluctuation: Optional per-contact bandwidth fluctuation model.
        downlink_severity: Optional downlink-only fluctuation severity.
        ground_detector_for_scoring: Whether the ground re-screens
            downloads with the accurate detector before mosaic ingest.
        seed: Ground-segment seed (random update skipping).
        store: Experiment store: an
            :class:`~repro.store.backend.ExperimentStore`, None to
            bypass caching, or the default (resolve from ``REPRO_STORE``).

    Returns:
        The aggregated :class:`RunResult`.

    Raises:
        ConfigError: For unknown policy names.
    """
    return run_scenario_cached(
        ScenarioSpec(
            policy=policy,
            dataset=dataset,
            config=config,
            uplink_bytes_per_contact=uplink_bytes_per_contact,
            downlink_bytes_per_contact=downlink_bytes_per_contact,
            fluctuation=fluctuation,
            downlink_severity=downlink_severity,
            ground_detector_for_scoring=ground_detector_for_scoring,
            seed=seed,
        ),
        store=store,
    )


@dataclass
class PolicyComparison:
    """Side-by-side results of several policies on one dataset.

    Attributes:
        results: Policy name -> run result.
    """

    results: dict[str, RunResult]

    def downlink_saving(self, against: str = "strongest") -> float:
        """Earth+'s downlink saving factor (the paper's Figure 14 metric).

        Args:
            against: ``"strongest"`` compares against the baseline with the
                lowest downlink among those whose PSNR does not exceed
                Earth+'s by more than 0.5 dB (the paper's "strongest
                baseline with lower PSNR"); or a policy name.

        Returns:
            Baseline downlink bytes divided by Earth+ downlink bytes.
        """
        earthplus = self.results["earthplus"]
        candidates = {
            name: result
            for name, result in self.results.items()
            if name != "earthplus"
        }
        if against != "strongest":
            baseline = self.results[against]
        else:
            eligible = {
                name: result
                for name, result in candidates.items()
                if result.mean_psnr() <= earthplus.mean_psnr() + 0.5
            }
            pool = eligible if eligible else candidates
            baseline = min(pool.values(), key=lambda r: r.downlink_bytes)
        if earthplus.downlink_bytes == 0:
            return float("inf")
        return baseline.downlink_bytes / earthplus.downlink_bytes


def compare_policies(
    dataset: SyntheticDataset,
    policies: tuple[str, ...] = ("earthplus", "kodan", "satroi"),
    config: EarthPlusConfig | None = None,
    **kwargs,
) -> PolicyComparison:
    """Run several policies on one dataset and bundle the results."""
    results = {
        name: run_policy(dataset, name, config, **kwargs) for name in policies
    }
    return PolicyComparison(results=results)
