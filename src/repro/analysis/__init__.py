"""Experiment harness: scenarios, runners, statistics, and formatting.

:mod:`repro.analysis.scenarios` is the orchestration layer every
simulation goes through (declarative :class:`ScenarioSpec`s, batch
execution with optional process parallelism);
:mod:`repro.analysis.experiments` holds the per-comparison runners (thin
wrappers over scenarios), :mod:`repro.analysis.stats` the CDF/summary
helpers, and :mod:`repro.analysis.tables` the plain-text/csv/json
rendering used to print paper-style rows.
"""

from repro.analysis.experiments import run_policy, compare_policies, PolicyComparison
from repro.analysis.scenarios import (
    DatasetSpec,
    ScenarioSpec,
    run_scenario,
    run_scenarios,
    sweep_specs,
)
from repro.analysis.stats import cdf, summarize, Summary
from repro.analysis.tables import format_table, format_series

__all__ = [
    "run_policy",
    "compare_policies",
    "PolicyComparison",
    "DatasetSpec",
    "ScenarioSpec",
    "run_scenario",
    "run_scenarios",
    "sweep_specs",
    "cdf",
    "summarize",
    "Summary",
    "format_table",
    "format_series",
]
