"""Experiment harness: runners, statistics, and table formatting.

:mod:`repro.analysis.experiments` holds one runner per paper figure/table
(the benchmarks are thin wrappers over these), :mod:`repro.analysis.stats`
the CDF/summary helpers, and :mod:`repro.analysis.tables` the plain-text
rendering used to print paper-style rows.
"""

from repro.analysis.experiments import run_policy, compare_policies, PolicyComparison
from repro.analysis.stats import cdf, summarize, Summary
from repro.analysis.tables import format_table, format_series

__all__ = [
    "run_policy",
    "compare_policies",
    "PolicyComparison",
    "cdf",
    "summarize",
    "Summary",
    "format_table",
    "format_series",
]
