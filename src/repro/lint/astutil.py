"""Small AST helpers shared by the ``repro lint`` rule checkers."""

from __future__ import annotations

import ast

#: Node types that introduce a new (non-module) execution scope.  Class
#: bodies deliberately do NOT appear: they execute at import time, so for
#: the import-time-vs-call-time distinction a class body is module scope.
FUNCTION_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def dotted_name(node: ast.expr) -> str | None:
    """The dotted name of a Name/Attribute chain, or None.

    ``np.random.default_rng`` -> ``"np.random.default_rng"``;
    anything rooted in a call or subscript (``foo().bar``) yields None.
    """
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee (``time.time(...)`` -> ``time.time``)."""
    return dotted_name(node.func)


def string_constants(tree: ast.Module) -> dict[str, str]:
    """Module-level ``NAME = "literal"`` bindings.

    Used to resolve indirected environment-variable names
    (``_ENV_CC = "REPRO_CODEC_CC"; os.environ.get(_ENV_CC)``) so a rule
    cannot be dodged by hoisting the string into a constant.
    """
    constants: dict[str, str] = {}
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if (
            value is not None
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            for target in targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = value.value
    return constants


def decorator_names(node: ast.ClassDef | ast.FunctionDef) -> set[str]:
    """Dotted names of a definition's decorators (calls unwrapped)."""
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name is not None:
            names.add(name)
    return names


def is_dataclass(node: ast.ClassDef) -> bool:
    """Whether the class is decorated with ``@dataclass`` (any spelling)."""
    return any(
        name == "dataclass" or name.endswith(".dataclass")
        for name in decorator_names(node)
    )


def dataclass_fields(node: ast.ClassDef) -> list[str]:
    """Declared dataclass field names (annotated class-body assignments).

    ``ClassVar`` annotations are excluded — they are class state, not
    per-instance fields, so merge/pickle coverage does not apply.
    """
    fields: list[str] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            annotation = ast.unparse(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            fields.append(stmt.target.id)
    return fields


def slots_fields(node: ast.ClassDef) -> list[str] | None:
    """``__slots__`` entries when declared as a literal, else None."""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    value = stmt.value
                    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                        names = [
                            e.value
                            for e in value.elts
                            if isinstance(e, ast.Constant)
                            and isinstance(e.value, str)
                        ]
                        return names
                    if isinstance(value, ast.Constant) and isinstance(
                        value.value, str
                    ):
                        return [value.value]
                    return None
    return None


def identifiers_in(node: ast.AST) -> set[str]:
    """Every identifier-ish token under ``node``.

    Collects bare names, attribute names, call keyword arguments, and
    string constants (dict keys / ``getattr`` names), which is exactly
    the set a field can be "referenced" through in a merge or
    ``__getstate__`` body.
    """
    found: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            found.add(child.id)
        elif isinstance(child, ast.Attribute):
            found.add(child.attr)
        elif isinstance(child, ast.keyword) and child.arg is not None:
            found.add(child.arg)
        elif isinstance(child, ast.Constant) and isinstance(child.value, str):
            found.add(child.value)
    return found


def field_wildcard_aliases(tree: ast.Module) -> set[str]:
    """Local names that mean "every dataclass field" when called.

    ``from dataclasses import fields as dataclass_fields`` must count as
    the future-proof all-fields spelling just like a plain ``fields``
    reference, so coverage checks collect the aliases actually bound in
    the module.
    """
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "dataclasses":
            for alias in node.names:
                if alias.name in ("fields", "asdict", "astuple"):
                    aliases.add(alias.asname or alias.name)
    return aliases


def in_package_dir(relparts: tuple[str, ...], dirnames: set[str]) -> bool:
    """Whether a file lives under any of the named package directories.

    Matches on path components, so it works both for real tree paths
    (``src/repro/core/phases.py``) and for test fixture trees
    (``<tmp>/core/bad.py``).
    """
    return bool(set(relparts[:-1]) & dirnames)
