"""Rule registration and ``--select``/``--ignore`` resolution.

Rule modules register themselves at import via :func:`register`;
:mod:`repro.lint.rules` imports every built-in rule module so
:func:`all_rules` is complete after ``import repro.lint``.  Selection
accepts codes (``RPR003``), mnemonic names (``monoid``), or ``all``,
case-insensitively; unknown identifiers raise
:class:`~repro.errors.LintError` (CLI exit 2) rather than silently
linting with fewer rules than the caller asked for.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import LintError
from repro.lint.model import Rule

_RULES: dict[str, Rule] = {}  # repro: allow(RPR005): populated only by module-level register() calls at import time, so every process (parent or forked worker) builds the identical registry


def register(rule: Rule) -> Rule:
    """Add a rule to the registry (idempotent for identical re-imports)."""
    existing = _RULES.get(rule.code)
    if existing is not None and existing is not rule:
        raise LintError(f"duplicate lint rule code {rule.code!r}")
    _RULES[rule.code] = rule
    return rule


def all_rules() -> list[Rule]:
    """Every registered rule, in code order."""
    return [_RULES[code] for code in sorted(_RULES)]


def _resolve_one(identifier: str) -> list[Rule]:
    word = identifier.strip().lower()
    if not word:
        return []
    if word == "all":
        return all_rules()
    for rule in _RULES.values():
        if word in (rule.code.lower(), rule.name.lower()):
            return [rule]
    known = ", ".join(
        f"{r.code}/{r.name}" for r in all_rules()
    )
    raise LintError(f"unknown lint rule {identifier!r}; known rules: {known}")


def resolve_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """The rule set a lint run should execute.

    ``select`` narrows from the full registry (default: everything);
    ``ignore`` then removes rules.  Both accept codes, names, or
    ``all``.
    """
    if select:
        chosen: dict[str, Rule] = {}
        for identifier in select:
            for rule in _resolve_one(identifier):
                chosen[rule.code] = rule
    else:
        chosen = {rule.code: rule for rule in all_rules()}
    if ignore:
        for identifier in ignore:
            for rule in _resolve_one(identifier):
                chosen.pop(rule.code, None)
    return [chosen[code] for code in sorted(chosen)]
