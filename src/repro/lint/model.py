"""Finding and rule data model for ``repro lint``.

A :class:`Finding` is one violation of one :class:`Rule` at one source
location.  Findings are plain frozen data so reporters, the CLI, and CI
artifact uploads all consume the same objects; ``suppressed`` marks
findings that matched an inline ``# repro: allow(<rule>)`` comment and
therefore do not affect the exit code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: Rule code (``RPR001`` ... ``RPR005``, or ``RPR000`` for a
            file the linter could not parse).
        path: Display path of the offending file (as given on the
            command line, normalized to posix separators).
        line: 1-based source line of the violation.
        col: 0-based column of the violation.
        message: Human-readable description of what is wrong and how to
            fix it.
        suppressed: True when an inline ``# repro: allow(...)`` comment
            on the finding line (or the line above it) covers this rule.
        justification: The free text after ``allow(rule):`` on the
            matching suppression comment, when one was given.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    justification: str | None = None

    def as_dict(self) -> dict[str, object]:
        """JSON-ready rendering (the ``--format json`` row schema)."""
        return {
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "suppressed": self.suppressed,
            "justification": self.justification,
        }


@dataclass(frozen=True)
class Rule:
    """One registered lint rule.

    Attributes:
        code: Stable identifier (``RPR001``); suppression comments and
            ``--select``/``--ignore`` accept it case-insensitively.
        name: Short mnemonic alias (``determinism``), equally accepted
            by suppressions and selection flags.
        summary: One-line description for ``--format json`` metadata and
            the docs rule catalog.
        check: The checker callable.  File rules receive one
            :class:`~repro.lint.engine.ModuleInfo`; project rules
            receive one :class:`~repro.lint.engine.ProjectInfo`.
        project_level: True for rules that run once per lint invocation
            against the repository (RPR004) instead of once per file.
    """

    code: str
    name: str
    summary: str
    check: Callable[..., Iterable[Finding]]
    project_level: bool = False


@dataclass
class LintResult:
    """Everything one lint run produced.

    Attributes:
        findings: All findings in (path, line, col, rule) order,
            suppressed ones included and flagged.
        files_checked: Number of python files parsed.
        rules_run: Codes of the rules that were enabled for the run.
    """

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        """Findings that count against the exit code."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        """Findings silenced by an inline allow comment."""
        return [f for f in self.findings if f.suppressed]

    @property
    def exit_code(self) -> int:
        """CI contract: 0 clean, 1 active findings (2 = internal error,
        raised as :class:`~repro.errors.LintError` before a result
        exists)."""
        return 1 if self.active else 0
