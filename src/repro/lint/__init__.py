"""``repro lint``: AST-based enforcement of the repo's repro contracts.

Every invariant this package checks is one the codebase has already been
burned by (see each rule module's docstring for the incident):

=======  =============  ====================================================
Code     Name           Contract
=======  =============  ====================================================
RPR001   determinism    no ambient entropy / set-order iteration in
                        result-bearing packages (core, codec, orbit,
                        analysis)
RPR002   envflags       no import-time environment reads; ``REPRO_*`` only
                        through ``repro.perf.env_flag`` / registered
                        accessors
RPR003   monoid         ``identity()``/``merge()`` pairs; ``merge()`` covers
                        every declared field
RPR004   storekey       spec-canonicalization surface matches the committed
                        golden; changes require a ``SCHEMA_VERSION`` bump
RPR005   forksafety     runtime-mutated module globals carry fork-safety
                        justifications; ``__getstate__`` covers every field
=======  =============  ====================================================

Violations are suppressed inline, with a reviewable justification::

    # repro: allow(RPR005): populated only at import time

Entry points: the ``repro lint`` CLI (``repro.cli``) and
:func:`run_lint` for tests/tooling.
"""

from repro.lint import rules  # noqa: F401  (imports register the rules)
from repro.lint.engine import ModuleInfo, ProjectInfo, run_lint
from repro.lint.model import Finding, LintResult, Rule
from repro.lint.registry import all_rules, resolve_rules
from repro.lint.report import render_json, render_table

__all__ = [
    "Finding",
    "LintResult",
    "ModuleInfo",
    "ProjectInfo",
    "Rule",
    "all_rules",
    "render_json",
    "render_table",
    "resolve_rules",
    "run_lint",
]
