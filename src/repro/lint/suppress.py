"""Inline suppression comments: ``# repro: allow(<rule>[, <rule>...])``.

A finding is suppressed when the line it is reported on — or the line
directly above it, for statements too long to share a line with a
comment — carries an allow comment naming the finding's rule code
(``RPR005``), its mnemonic name (``forksafety``), or ``all``.  An
optional justification follows a colon and is carried onto the finding
(and into the JSON report), so every suppression documents *why* the
invariant is safe to relax at that site:

    _REGISTRY: dict[str, CodecBackend] = {}  # repro: allow(RPR005): populated only at import time; identical in every process

Suppressions are per-line and per-rule by design: there is no file-wide
or block-wide escape hatch, so each exempted site stays visible in
review.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*(?P<rules>[A-Za-z0-9_,\s-]+?)\s*\)"
    r"(?:\s*:\s*(?P<why>.*\S))?",
)


@dataclass(frozen=True)
class Suppression:
    """One allow comment: the rules it names and its justification."""

    rules: frozenset[str]
    justification: str | None

    def covers(self, code: str, name: str) -> bool:
        """Whether this comment silences rule ``code`` / alias ``name``."""
        return bool(
            self.rules & {code.lower(), name.lower(), "all"}
        )


def scan_suppressions(source: str) -> dict[int, Suppression]:
    """All allow comments in ``source``, keyed by 1-based line number.

    Tokenizes rather than regex-scanning raw lines so a ``# repro:``
    inside a string literal never counts as a suppression.  Returns an
    empty mapping for source the tokenizer cannot process (the parser
    will report that file anyway).
    """
    found: dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(token.string)
            if match is None:
                continue
            rules = frozenset(
                part.strip().lower()
                for part in match.group("rules").split(",")
                if part.strip()
            )
            if not rules:
                continue
            found[token.start[0]] = Suppression(
                rules=rules, justification=match.group("why")
            )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return found


def suppression_for(
    suppressions: dict[int, Suppression], line: int, code: str, name: str
) -> Suppression | None:
    """The comment covering a finding at ``line``, if any.

    Checks the finding's own line first, then the line directly above.
    """
    for candidate in (line, line - 1):
        comment = suppressions.get(candidate)
        if comment is not None and comment.covers(code, name):
            return comment
    return None
