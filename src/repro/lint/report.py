"""Reporters: render a :class:`~repro.lint.model.LintResult` for humans/CI.

Two formats, mirroring the rest of the CLI:

* ``table`` — one ``path:line:col CODE message`` row per active finding
  plus a summary line; suppressed findings appear only with
  ``--show-suppressed``.
* ``json`` — a single document with a stable schema CI can upload as an
  artifact and scripts can consume::

      {
        "version": 1,
        "clean": bool,
        "files_checked": int,
        "rules": [{"code", "name", "summary"}],
        "counts": {"active": int, "suppressed": int},
        "findings": [{"file", "line", "col", "rule", "message",
                      "suppressed", "justification"}]
      }
"""

from __future__ import annotations

import json

from repro.lint.model import LintResult, Rule


def render_table(result: LintResult, show_suppressed: bool = False) -> str:
    """Human-readable findings table plus a one-line summary."""
    lines: list[str] = []
    shown = result.findings if show_suppressed else result.active
    for finding in shown:
        mark = " [suppressed]" if finding.suppressed else ""
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1} "
            f"{finding.rule} {finding.message}{mark}"
        )
        if finding.suppressed and finding.justification:
            lines.append(f"    allow: {finding.justification}")
    active = len(result.active)
    suppressed = len(result.suppressed)
    summary = (
        f"{active} finding{'s' if active != 1 else ''} "
        f"({suppressed} suppressed) across {result.files_checked} files "
        f"[rules: {', '.join(result.rules_run)}]"
    )
    lines.append(summary if lines else f"clean: {summary}")
    return "\n".join(lines)


def render_json(result: LintResult, rules: list[Rule]) -> str:
    """Machine-readable report (the CI artifact format)."""
    by_code = {rule.code: rule for rule in rules}
    document = {
        "version": 1,
        "clean": not result.active,
        "files_checked": result.files_checked,
        "rules": [
            {
                "code": code,
                "name": by_code[code].name if code in by_code else code,
                "summary": by_code[code].summary if code in by_code else "",
            }
            for code in result.rules_run
        ],
        "counts": {
            "active": len(result.active),
            "suppressed": len(result.suppressed),
        },
        "findings": [finding.as_dict() for finding in result.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)
