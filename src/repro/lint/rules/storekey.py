"""RPR004 — store-key hygiene: keyed spec surface vs ``SCHEMA_VERSION``.

The experiment store content-addresses results by hashing a canonical
document of the scenario spec (``repro.store.specs``).  Every
``EarthPlusConfig`` field enters that document (via ``asdict``), as do
the top-level ``spec_document`` keys and the fluctuation-model fields —
so *changing that surface without bumping* ``SCHEMA_VERSION`` silently
re-keys (or worse, fails to re-key) existing cache entries.  That
footgun is called out in specs.py's docstring; this rule makes it
machine-checked.

Mechanism: a committed golden snapshot
(``tests/store/golden_spec_fields.json``) records the keyed field
surface and the ``SCHEMA_VERSION`` it was taken at.  On every lint run
the rule re-extracts the surface from the AST of
``src/repro/core/config.py`` and ``src/repro/store/specs.py`` and
compares:

* surface changed, version unchanged  -> **violation** ("bump
  SCHEMA_VERSION");
* surface changed, version bumped     -> re-snapshot reminder (run
  ``repro lint --update-golden``) so the golden stays in lockstep;
* surface unchanged, version changed  -> re-snapshot reminder (a pure
  numerics/wire-format bump still re-anchors the snapshot).

The golden therefore always equals the current extraction on a green
tree, and the only way to change the keyed surface is a commit that
visibly touches both ``SCHEMA_VERSION`` and the golden.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.lint import astutil
from repro.lint.engine import ProjectInfo
from repro.lint.model import Finding, Rule
from repro.lint.registry import register

CODE = "RPR004"
NAME = "storekey"

#: Project-relative location of the committed snapshot.
GOLDEN_RELPATH = Path("tests") / "store" / "golden_spec_fields.json"
#: Project-relative sources the keyed surface is extracted from.
CONFIG_RELPATH = Path("src") / "repro" / "core" / "config.py"
SPECS_RELPATH = Path("src") / "repro" / "store" / "specs.py"


@dataclass(frozen=True)
class KeyedSurface:
    """The statically-extracted spec-canonicalization surface.

    Attributes:
        schema_version: Value of ``specs.SCHEMA_VERSION``.
        config_fields: ``EarthPlusConfig`` dataclass fields (all enter
            the canonical document through ``asdict``).
        spec_document_keys: Top-level keys of the dict
            ``spec_document`` returns.
        fluctuation_fields: Keys of the dict
            ``_fluctuation_document`` returns.
        version_line: Source line of the ``SCHEMA_VERSION`` assignment
            (for finding locations).
        config_line: Source line of the ``EarthPlusConfig`` class.
    """

    schema_version: int
    config_fields: tuple[str, ...]
    spec_document_keys: tuple[str, ...]
    fluctuation_fields: tuple[str, ...]
    version_line: int = 1
    config_line: int = 1

    def as_golden(self) -> dict[str, object]:
        """The JSON document committed as the golden snapshot."""
        return {
            "schema_version": self.schema_version,
            "config_fields": sorted(self.config_fields),
            "spec_document_keys": sorted(self.spec_document_keys),
            "fluctuation_fields": sorted(self.fluctuation_fields),
        }


def _return_dict_keys(func: ast.FunctionDef) -> tuple[str, ...]:
    """Constant keys of dict literals returned by ``func``."""
    keys: list[str] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    if key.value not in keys:
                        keys.append(key.value)
    return tuple(keys)


def extract_surface(config_source: str, specs_source: str) -> KeyedSurface:
    """Extract the keyed surface from the two source files' ASTs.

    Raises:
        ValueError: When an expected definition (``EarthPlusConfig``,
            ``SCHEMA_VERSION``, ``spec_document``) is missing — the
            contract anchor itself moved, which must fail loudly.
    """
    config_tree = ast.parse(config_source)
    specs_tree = ast.parse(specs_source)

    config_fields: tuple[str, ...] | None = None
    config_line = 1
    for node in ast.walk(config_tree):
        if isinstance(node, ast.ClassDef) and node.name == "EarthPlusConfig":
            config_fields = tuple(astutil.dataclass_fields(node))
            config_line = node.lineno
            break
    if config_fields is None:
        raise ValueError("EarthPlusConfig class not found in config source")

    schema_version: int | None = None
    version_line = 1
    for stmt in specs_tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "SCHEMA_VERSION"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, int)
                ):
                    schema_version = stmt.value.value
                    version_line = stmt.lineno
    if schema_version is None:
        raise ValueError("SCHEMA_VERSION assignment not found in specs source")

    spec_keys: tuple[str, ...] = ()
    fluct_keys: tuple[str, ...] = ()
    for node in ast.walk(specs_tree):
        if isinstance(node, ast.FunctionDef):
            if node.name == "spec_document":
                spec_keys = _return_dict_keys(node)
            elif node.name == "_fluctuation_document":
                fluct_keys = _return_dict_keys(node)
    if not spec_keys:
        raise ValueError("spec_document return keys not found in specs source")

    return KeyedSurface(
        schema_version=schema_version,
        config_fields=config_fields,
        spec_document_keys=spec_keys,
        fluctuation_fields=fluct_keys,
        version_line=version_line,
        config_line=config_line,
    )


def _diff(current: list[str], golden: list[str]) -> str:
    added = sorted(set(current) - set(golden))
    removed = sorted(set(golden) - set(current))
    parts = []
    if added:
        parts.append("added " + ", ".join(added))
    if removed:
        parts.append("removed " + ", ".join(removed))
    return "; ".join(parts)


def check_surface(
    surface: KeyedSurface,
    golden: dict[str, object],
    specs_path: str,
    config_path: str,
    golden_path: str,
) -> list[Finding]:
    """Compare the extracted surface against the committed golden."""
    current = surface.as_golden()
    field_groups = (
        ("config_fields", config_path, surface.config_line),
        ("spec_document_keys", specs_path, 1),
        ("fluctuation_fields", specs_path, 1),
    )
    changes: list[tuple[str, str, int, str]] = []
    for group, path, line in field_groups:
        mine = list(current[group])  # type: ignore[arg-type]
        theirs = list(golden.get(group, []))  # type: ignore[arg-type]
        if sorted(mine) != sorted(theirs):
            changes.append((group, path, line, _diff(mine, theirs)))

    golden_version = golden.get("schema_version")
    findings: list[Finding] = []
    if changes:
        if surface.schema_version == golden_version:
            for group, path, line, delta in changes:
                findings.append(
                    Finding(
                        rule=CODE,
                        path=path,
                        line=line,
                        col=0,
                        message=(
                            f"store-keyed surface changed ({group}: {delta}) "
                            "but SCHEMA_VERSION is still "
                            f"{surface.schema_version}; bump SCHEMA_VERSION "
                            "in src/repro/store/specs.py (stale cache "
                            "entries must stop matching) and re-snapshot "
                            "with `repro lint --update-golden`"
                        ),
                    )
                )
        else:
            summary = "; ".join(
                f"{group}: {delta}" for group, _, _, delta in changes
            )
            findings.append(
                Finding(
                    rule=CODE,
                    path=golden_path,
                    line=1,
                    col=0,
                    message=(
                        f"SCHEMA_VERSION was bumped to "
                        f"{surface.schema_version} for a keyed-surface "
                        f"change ({summary}) — re-snapshot the golden with "
                        "`repro lint --update-golden`"
                    ),
                )
            )
    elif surface.schema_version != golden_version:
        findings.append(
            Finding(
                rule=CODE,
                path=golden_path,
                line=1,
                col=0,
                message=(
                    f"SCHEMA_VERSION is {surface.schema_version} but the "
                    f"golden snapshot records {golden_version}; re-anchor "
                    "with `repro lint --update-golden`"
                ),
            )
        )
    return findings


def _project_surface(project_root: Path) -> KeyedSurface | None:
    config_path = project_root / CONFIG_RELPATH
    specs_path = project_root / SPECS_RELPATH
    if not config_path.is_file() or not specs_path.is_file():
        return None
    return extract_surface(
        config_path.read_text(encoding="utf-8"),
        specs_path.read_text(encoding="utf-8"),
    )


def update_golden(project_root: Path) -> Path:
    """Re-snapshot the golden from the current tree (``--update-golden``).

    Returns the path written.

    Raises:
        ValueError: When the tree under ``project_root`` does not carry
            the config/specs sources to snapshot from.
    """
    surface = _project_surface(project_root)
    if surface is None:
        raise ValueError(
            f"cannot update golden: {CONFIG_RELPATH} / {SPECS_RELPATH} "
            f"not found under {project_root}"
        )
    golden_path = project_root / GOLDEN_RELPATH
    golden_path.parent.mkdir(parents=True, exist_ok=True)
    golden_path.write_text(
        json.dumps(surface.as_golden(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return golden_path


def check(project: ProjectInfo) -> Iterator[Finding]:
    """Run the store-key hygiene check once per lint invocation.

    Quietly skips trees that do not carry the spec sources (fixture
    trees for other rules); a missing *golden* on a tree that has them
    is a finding — the snapshot is part of the contract.
    """
    surface = _project_surface(project.root)
    if surface is None:
        return iter(())
    golden_path = project.root / GOLDEN_RELPATH
    display = (GOLDEN_RELPATH).as_posix()
    if not golden_path.is_file():
        return iter(
            [
                Finding(
                    rule=CODE,
                    path=display,
                    line=1,
                    col=0,
                    message=(
                        "store-key golden snapshot is missing; create it "
                        "with `repro lint --update-golden` and commit it"
                    ),
                )
            ]
        )
    try:
        golden = json.loads(golden_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return iter(
            [
                Finding(
                    rule=CODE,
                    path=display,
                    line=1,
                    col=0,
                    message=f"store-key golden snapshot is unreadable: {exc}",
                )
            ]
        )
    return iter(
        check_surface(
            surface,
            golden,
            specs_path=SPECS_RELPATH.as_posix(),
            config_path=CONFIG_RELPATH.as_posix(),
            golden_path=display,
        )
    )


register(
    Rule(
        code=CODE,
        name=NAME,
        summary=(
            "spec-canonicalization field surface matches the committed "
            "golden; changing it requires a SCHEMA_VERSION bump"
        ),
        check=check,
        project_level=True,
    )
)
