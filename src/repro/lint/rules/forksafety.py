"""RPR005 — fork/pickle safety: worker-divergent state must be explicit.

The sweep scheduler forks long-lived workers and ships results back by
pickle; two structural patterns have historically threatened the
"parallel == sequential" byte-identity contract:

* **Module-level mutable state mutated at runtime.**  A module-scope
  dict/list/set that functions mutate after import diverges between the
  driver and each forked worker (every process mutates its own copy).
  Sometimes that is exactly the design — per-process caches, import-time
  registries — but then it must be *declared*: the rule flags every such
  name once (at its definition) and the accepted sites carry a
  ``# repro: allow(RPR005): <why fork-safe>`` justification, turning
  implicit fork behavior into reviewed documentation.

* **Pickle state that omits declared fields.**  ``__getstate__``
  implementations that enumerate state by hand drift when fields are
  added (the PR 5 tuple-state work exists because dict-state string
  interning broke byte-identity).  When a class declares its fields
  (``@dataclass``/``__slots__``) and ``__getstate__`` builds state from
  explicit attribute reads, every declared field must appear; copying
  ``self.__dict__`` or iterating ``dataclasses.fields`` is future-proof
  and accepted as covering everything.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint import astutil
from repro.lint.engine import ModuleInfo
from repro.lint.model import Finding, Rule
from repro.lint.registry import register

CODE = "RPR005"
NAME = "forksafety"

#: Constructors whose results are module-level mutable containers.
_CONTAINER_CALLS = {
    "dict",
    "list",
    "set",
    "collections.OrderedDict",
    "OrderedDict",
    "collections.defaultdict",
    "defaultdict",
    "collections.deque",
    "deque",
    "collections.Counter",
    "weakref.WeakValueDictionary",
    "WeakValueDictionary",
    "weakref.WeakKeyDictionary",
    "WeakKeyDictionary",
    "weakref.WeakSet",
    "WeakSet",
}

#: Method calls that mutate a container in place.
_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "popleft",
    "clear",
    "extend",
    "insert",
    "remove",
    "discard",
}

#: Inside __getstate__, any of these means "all fields included".
_STATE_WILDCARDS = {"fields", "asdict", "astuple", "__dict__", "vars"}


def _is_container_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        return astutil.call_name(node) in _CONTAINER_CALLS
    return False


def _module_containers(tree: ast.Module) -> dict[str, int]:
    """Module-scope names bound to mutable containers -> definition line."""
    containers: dict[str, int] = {}
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_container_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                containers[target.id] = stmt.lineno
    return containers


class _MutationFinder(ast.NodeVisitor):
    """Collects runtime mutations of module-level containers.

    Tracks function nesting and per-function local bindings so a local
    variable shadowing a module-level name is never miscounted.
    """

    def __init__(self, containers: dict[str, int]) -> None:
        self.containers = containers
        self.mutations: dict[str, list[int]] = {}
        self._locals_stack: list[set[str]] = []

    def _function_locals(self, node: ast.AST) -> set[str]:
        bound: set[str] = set()
        args = getattr(node, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                bound.add(arg.arg)
        declared_global: set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, (ast.Global, ast.Nonlocal)):
                declared_global.update(child.names)
            elif isinstance(child, ast.Assign):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
            elif isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name
            ):
                bound.add(child.target.id)
            elif isinstance(child, (ast.For, ast.AsyncFor)) and isinstance(
                child.target, ast.Name
            ):
                bound.add(child.target.id)
            elif isinstance(child, ast.withitem) and isinstance(
                child.optional_vars, ast.Name
            ):
                bound.add(child.optional_vars.id)
        return bound - declared_global

    def _enter_function(self, node: ast.AST) -> None:
        self._locals_stack.append(self._function_locals(node))
        self.generic_visit(node)
        self._locals_stack.pop()

    visit_FunctionDef = _enter_function
    visit_AsyncFunctionDef = _enter_function
    visit_Lambda = _enter_function

    def _is_module_container(self, name: str) -> bool:
        if name not in self.containers:
            return False
        return not any(name in scope for scope in self._locals_stack)

    def _record(self, name: str, line: int) -> None:
        self.mutations.setdefault(name, []).append(line)

    def visit_Call(self, node: ast.Call) -> None:
        if self._locals_stack and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS and isinstance(
                node.func.value, ast.Name
            ):
                name = node.func.value.id
                if self._is_module_container(name):
                    self._record(name, node.lineno)
        self.generic_visit(node)

    def _check_subscript_target(self, target: ast.expr, line: int) -> None:
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            name = target.value.id
            if self._is_module_container(name):
                self._record(name, line)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._locals_stack:
            for target in node.targets:
                self._check_subscript_target(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._locals_stack:
            self._check_subscript_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        if self._locals_stack:
            for target in node.targets:
                self._check_subscript_target(target, node.lineno)
        self.generic_visit(node)


def _check_globals(module: ModuleInfo) -> list[Finding]:
    containers = _module_containers(module.tree)
    if not containers:
        return []
    finder = _MutationFinder(containers)
    finder.visit(module.tree)
    findings: list[Finding] = []
    for name in sorted(finder.mutations):
        lines = sorted(set(finder.mutations[name]))
        sites = ", ".join(str(line) for line in lines[:6])
        more = "" if len(lines) <= 6 else f" (+{len(lines) - 6} more)"
        findings.append(
            Finding(
                rule=CODE,
                path=module.display,
                line=containers[name],
                col=0,
                message=(
                    f"module-level mutable {name!r} is mutated at runtime "
                    f"(line {sites}{more}); forked workers each mutate "
                    "their own copy and silently diverge from the driver — "
                    "make it per-instance state, or document why "
                    "per-process divergence is safe with "
                    "`# repro: allow(RPR005): <reason>` on this line"
                ),
            )
        )
    return findings


def _check_getstate(module: ModuleInfo) -> list[Finding]:
    findings: list[Finding] = []
    wildcards = _STATE_WILDCARDS | astutil.field_wildcard_aliases(
        module.tree
    )
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        getstate = next(
            (
                stmt
                for stmt in node.body
                if isinstance(stmt, ast.FunctionDef)
                and stmt.name == "__getstate__"
            ),
            None,
        )
        if getstate is None:
            continue
        declared = astutil.slots_fields(node)
        if declared is None and astutil.is_dataclass(node):
            declared = astutil.dataclass_fields(node)
        if not declared:
            continue
        referenced = astutil.identifiers_in(getstate)
        if referenced & wildcards:
            continue
        missing = [name for name in declared if name not in referenced]
        if missing:
            findings.append(
                Finding(
                    rule=CODE,
                    path=module.display,
                    line=getstate.lineno,
                    col=getstate.col_offset,
                    message=(
                        f"{node.name}.__getstate__ omits declared field(s) "
                        f"{', '.join(missing)}; workers would unpickle "
                        "instances missing state — include them, or build "
                        "the state from dataclasses.fields/self.__dict__ "
                        "so new fields ride along automatically"
                    ),
                )
            )
    return findings


def check(module: ModuleInfo) -> Iterator[Finding]:
    """Run the fork/pickle-safety checks over one module."""
    return iter(_check_globals(module) + _check_getstate(module))


register(
    Rule(
        code=CODE,
        name=NAME,
        summary=(
            "runtime-mutated module-level state carries an explicit "
            "fork-safety justification; __getstate__ covers every declared "
            "field"
        ),
        check=check,
    )
)
