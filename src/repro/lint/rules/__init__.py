"""Built-in lint rules; importing this package registers all of them."""

from repro.lint.rules import (  # noqa: F401  (import-for-registration)
    determinism,
    envflags,
    forksafety,
    monoid,
    storekey,
)

__all__ = ["determinism", "envflags", "forksafety", "monoid", "storekey"]
