"""RPR001 — determinism: no ambient entropy in result-bearing packages.

The scenario layer's contract is that a spec determines its
``RunResult`` byte-for-byte (it is what makes the experiment store's
content addressing and the sharded runner's "merged == sequential"
guarantee sound).  This rule statically bans the two ways that contract
has historically been threatened:

* **Ambient entropy** — wall-clock reads (``time.time``,
  ``datetime.now``), the process-seeded ``random`` module, numpy's
  legacy global generator (``np.random.rand``/``np.random.seed``), and
  *unseeded* ``np.random.default_rng()``.  Monotonic clocks
  (``time.perf_counter``/``time.monotonic``) stay allowed: they feed
  profiling, never results.

* **Set-order iteration** — iterating a ``set``/``frozenset`` (or
  materializing one with ``list``/``tuple``/``join``) yields a
  hash-randomized order that differs across processes, which is exactly
  the class of bug the canonical-visit-order merge discipline exists to
  prevent.  Wrap in ``sorted(...)`` instead.

Scope: files under ``core/``, ``codec/``, ``orbit/``, and
``analysis/`` — the packages whose outputs are content-addressed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint import astutil
from repro.lint.engine import ModuleInfo
from repro.lint.model import Finding, Rule
from repro.lint.registry import register

CODE = "RPR001"
NAME = "determinism"

#: Packages whose results are content-addressed (spec -> bytes).
SCOPED_DIRS = {"core", "codec", "orbit", "analysis"}

#: Calls that read ambient entropy, by dotted callee name.
_BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.now": "wall-clock read",
    "datetime.utcnow": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "date.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "uuid.uuid1": "host/time-derived identifier",
    "uuid.uuid4": "process-entropy identifier",
}

#: numpy.random attributes that are fine to call (seedable constructors).
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}

#: Builtins that materialize an iterable in iteration order.
_ORDER_MATERIALIZERS = {"list", "tuple", "iter", "enumerate"}


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = astutil.call_name(node)
        return name in ("set", "frozenset")
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.findings: list[Finding] = []
        self.random_imports: set[str] = set()

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=CODE,
                path=self.module.display,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                self.random_imports.add(alias.asname or alias.name)
        if node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _NP_RANDOM_OK:
                    self._flag(
                        node,
                        f"import of numpy.random.{alias.name} uses the "
                        "process-global generator; construct a seeded "
                        "np.random.default_rng(seed) instead",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = astutil.call_name(node)
        if name is not None:
            self._check_call(node, name)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, name: str) -> None:
        reason = _BANNED_CALLS.get(name)
        if reason is not None:
            self._flag(
                node,
                f"{name}() is a {reason}; results must be a pure function "
                "of the spec — derive values from the seed instead",
            )
            return
        head, _, attr = name.rpartition(".")
        if head in ("np.random", "numpy.random"):
            if attr == "default_rng":
                if not node.args and not node.keywords:
                    self._flag(
                        node,
                        "np.random.default_rng() without a seed draws OS "
                        "entropy; pass a seed derived from the spec",
                    )
            elif attr not in _NP_RANDOM_OK:
                self._flag(
                    node,
                    f"{name}() uses numpy's process-global generator; "
                    "construct a seeded np.random.default_rng(seed) instead",
                )
            return
        if head == "random" or (not head and name in self.random_imports):
            if attr == "Random" or name == "Random":
                if not node.args and not node.keywords:
                    self._flag(
                        node,
                        "random.Random() without a seed is process-seeded; "
                        "pass a seed derived from the spec",
                    )
            else:
                self._flag(
                    node,
                    f"{name}() uses the process-seeded random module; use a "
                    "seeded np.random.default_rng(seed) or random.Random(seed)",
                )
            return
        if name == "default_rng" and not node.args and not node.keywords:
            self._flag(
                node,
                "default_rng() without a seed draws OS entropy; pass a "
                "seed derived from the spec",
            )
            return
        if name in _ORDER_MATERIALIZERS and node.args:
            if _is_set_expr(node.args[0]):
                self._flag(
                    node,
                    f"{name}() over a set materializes hash-randomized "
                    "order; wrap the set in sorted(...)",
                )
        if name.endswith(".join") and node.args and _is_set_expr(node.args[0]):
            self._flag(
                node,
                "str.join over a set serializes hash-randomized order; "
                "wrap the set in sorted(...)",
            )

    def _check_iter(self, node: ast.expr) -> None:
        if _is_set_expr(node):
            self._flag(
                node,
                "iterating a set yields hash-randomized order that differs "
                "across processes; wrap it in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)


def check(module: ModuleInfo) -> Iterator[Finding]:
    """Run the determinism checks over one module (if it is in scope)."""
    if not astutil.in_package_dir(module.relparts, SCOPED_DIRS):
        return iter(())
    visitor = _Visitor(module)
    visitor.visit(module.tree)
    return iter(visitor.findings)


register(
    Rule(
        code=CODE,
        name=NAME,
        summary=(
            "no wall-clock/process-entropy reads or set-order iteration in "
            "result-bearing packages (core/, codec/, orbit/, analysis/)"
        ),
        check=check,
    )
)
