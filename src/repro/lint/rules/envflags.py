"""RPR002 — env-flag discipline: call-time reads through one accessor layer.

Two regression classes motivate this rule (both shipped, both fixed by
hand):

* **Import-time reads.**  ``REPRO_SIM_FASTPATH`` was once read at module
  import, so exporting it *after* ``import repro`` was silently ignored
  (PR 7 made it call-time).  Any ``os.environ``/``os.getenv`` read at
  module scope — whatever the variable — is flagged: module bodies run
  once, at import, which freezes the environment into the process.

* **Scattered ad-hoc parsing.**  Before ``repro.perf.env_flag``,
  ``REPRO_SIM_FASTPATH=FALSE`` *enabled* the fast path because the local
  parser only recognized ``0/false/no``.  Every ``REPRO_*`` read must
  therefore go through the registered accessor modules
  (:data:`ACCESSOR_MODULES`) — ``repro.perf`` for booleans and counts,
  the codec registry/toolchain and store-backend accessors for their own
  variables — so parsing rules stay centralized.  Indirecting the
  variable name through a module-level string constant does not evade
  the check.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint import astutil
from repro.lint.engine import ModuleInfo
from repro.lint.model import Finding, Rule
from repro.lint.registry import register

CODE = "RPR002"
NAME = "envflags"

#: Modules allowed to read ``REPRO_*`` directly (at call time): these ARE
#: the accessor layer every other module must go through.  Matching is on
#: trailing path components.  Growing this list is a reviewed code change,
#: which is the point.
ACCESSOR_MODULES: tuple[tuple[str, ...], ...] = (
    ("repro", "perf.py"),
    ("repro", "codec", "registry.py"),
    ("repro", "codec", "_ckernels.py"),
    ("repro", "store", "backend.py"),
    ("repro", "imagery", "sensor.py"),
)

#: Dotted callee names that read the environment.
_ENV_GETTERS = {"os.environ.get", "os.getenv", "environ.get", "getenv"}


def _is_accessor_module(module: ModuleInfo) -> bool:
    parts = module.path.parts
    return any(
        parts[-len(suffix):] == suffix for suffix in ACCESSOR_MODULES
    )


def _env_var_name(
    node: ast.expr | None, constants: dict[str, str]
) -> str | None:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.findings: list[Finding] = []
        self.constants = astutil.string_constants(module.tree)
        self.is_accessor = _is_accessor_module(module)
        self._depth = 0  # nesting inside function/lambda scopes

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=CODE,
                path=self.module.display,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def _enter_function(self, node: ast.AST) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_FunctionDef = _enter_function
    visit_AsyncFunctionDef = _enter_function
    visit_Lambda = _enter_function

    def _check_read(self, node: ast.AST, name_node: ast.expr | None) -> None:
        var = _env_var_name(name_node, self.constants)
        if self._depth == 0:
            shown = var or "the environment"
            self._flag(
                node,
                f"module-scope read of {shown}: import-time environment "
                "reads freeze the variable into the process — read at call "
                "time through repro.perf (env_flag) or a registered accessor",
            )
            return
        if (
            var is not None
            and var.startswith("REPRO_")
            and not self.is_accessor
        ):
            self._flag(
                node,
                f"direct read of {var}: REPRO_* variables must go through "
                "repro.perf.env_flag or a registered accessor so parsing "
                "stays centralized (see repro.lint.rules.envflags."
                "ACCESSOR_MODULES)",
            )

    def visit_Call(self, node: ast.Call) -> None:
        name = astutil.call_name(node)
        if name in _ENV_GETTERS:
            self._check_read(node, node.args[0] if node.args else None)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # os.environ["X"] reads; stores/deletes (os.environ["X"] = ...)
        # configure child processes and are allowed.
        if isinstance(node.ctx, ast.Load):
            base = astutil.dotted_name(node.value)
            if base in ("os.environ", "environ"):
                self._check_read(node, node.slice)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        # "REPRO_X" in os.environ is still an environment read.
        for op, comparator in zip(node.ops, node.comparators):
            if isinstance(op, (ast.In, ast.NotIn)):
                base = astutil.dotted_name(comparator)
                if base in ("os.environ", "environ"):
                    self._check_read(node, node.left)
        self.generic_visit(node)


def check(module: ModuleInfo) -> Iterator[Finding]:
    """Run the env-flag discipline checks over one module."""
    visitor = _Visitor(module)
    visitor.visit(module.tree)
    return iter(visitor.findings)


register(
    Rule(
        code=CODE,
        name=NAME,
        summary=(
            "no import-time environment reads; REPRO_* reads only through "
            "repro.perf.env_flag / registered accessor modules"
        ),
        check=check,
    )
)
