"""RPR003 — monoid completeness: identity/merge pairs that cover every field.

The sharded runner and the sweep scheduler fold per-worker partials with
``identity()``/``merge()`` monoids (``RunResult``, ``UplinkStats``,
``DownlinkStats``, ``SimProfiler``, ``Counters``); byte-identical
"sharded == sequential" results hold only while every field participates
in the merge.  The regression this rule exists for: add a field to a
stats dataclass, forget to thread it through ``merge()``, and sharded
runs silently drop that field's contribution — nothing crashes, the
differential tests only catch it if a fixture happens to exercise the
new field.

Checks, on every class in ``src/``:

* A class defining ``identity()`` must define ``merge()`` and vice
  versa — half a monoid merges nowhere or cannot seed a fold.
* When the class declares its fields statically (``@dataclass`` or
  ``__slots__``), the body of ``merge()`` must reference every declared
  field by name.  Iterating ``dataclasses.fields(...)`` (or using
  ``asdict``/``astuple``/``__dict__``/``vars``) counts as referencing
  all of them — that is the future-proof spelling.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint import astutil
from repro.lint.engine import ModuleInfo
from repro.lint.model import Finding, Rule
from repro.lint.registry import register

CODE = "RPR003"
NAME = "monoid"

#: Any of these inside merge() means "every field, whatever they are".
_FIELD_WILDCARDS = {"fields", "asdict", "astuple", "__dict__", "vars"}


def _methods(node: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _declared_fields(node: ast.ClassDef) -> list[str]:
    slots = astutil.slots_fields(node)
    if slots is not None:
        return slots
    if astutil.is_dataclass(node):
        return astutil.dataclass_fields(node)
    return []


class _Visitor(ast.NodeVisitor):
    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.findings: list[Finding] = []
        self.wildcards = _FIELD_WILDCARDS | astutil.field_wildcard_aliases(
            module.tree
        )

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=CODE,
                path=self.module.display,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods = _methods(node)
        has_identity = "identity" in methods
        has_merge = "merge" in methods
        if has_identity and not has_merge:
            self._flag(
                node,
                f"class {node.name} defines identity() but no merge(); "
                "half a monoid cannot fold worker partials",
            )
        if has_merge and not has_identity:
            self._flag(
                node,
                f"class {node.name} defines merge() but no identity(); "
                "folds have nothing to start from (and the sharded runner "
                "assumes both)",
            )
        if has_merge:
            self._check_merge_coverage(node, methods["merge"])
        self.generic_visit(node)

    def _check_merge_coverage(
        self, cls: ast.ClassDef, merge: ast.FunctionDef
    ) -> None:
        declared = _declared_fields(cls)
        if not declared:
            return
        referenced = astutil.identifiers_in(merge)
        if referenced & self.wildcards:
            return
        missing = [name for name in declared if name not in referenced]
        if missing:
            self._flag(
                merge,
                f"{cls.name}.merge() never references field(s) "
                f"{', '.join(missing)} — a field was added without "
                "threading it through the merge (sharded runs would "
                "silently drop it); handle it or iterate "
                "dataclasses.fields(...)",
            )


def check(module: ModuleInfo) -> Iterator[Finding]:
    """Run the monoid-completeness checks over one module."""
    visitor = _Visitor(module)
    visitor.visit(module.tree)
    return iter(visitor.findings)


register(
    Rule(
        code=CODE,
        name=NAME,
        summary=(
            "identity()/merge() come in pairs, and merge() references every "
            "declared dataclass/__slots__ field"
        ),
        check=check,
    )
)
