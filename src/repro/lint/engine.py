"""The lint engine: file collection, parsing, rule dispatch, suppression.

:func:`run_lint` is the one entry point the CLI and the tests share.  It
expands the given paths into a deterministic, sorted list of python
files, parses each once, runs every enabled file rule per module and
every project rule once, then resolves inline
``# repro: allow(<rule>)`` comments (:mod:`repro.lint.suppress`) into
the ``suppressed`` flag on each finding.  Unparseable files become
``RPR000`` findings instead of crashing the run, so one syntax error
cannot hide every other violation in CI.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import LintError
from repro.lint import registry
from repro.lint.model import Finding, LintResult, Rule
from repro.lint.suppress import (
    Suppression,
    scan_suppressions,
    suppression_for,
)

#: Directory names never descended into when expanding path arguments.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass
class ModuleInfo:
    """One parsed python file handed to file-level rules.

    Attributes:
        path: Filesystem path of the file.
        display: Normalized posix-style path used in findings.
        relparts: Path components relative to the lint root (for rules
            that scope themselves to package directories).
        source: Raw file text.
        tree: Parsed module AST.
    """

    path: Path
    display: str
    relparts: tuple[str, ...]
    source: str
    tree: ast.Module
    suppressions: dict[int, Suppression] = field(default_factory=dict)


@dataclass
class ProjectInfo:
    """Repository-level context handed to project rules (RPR004).

    Attributes:
        root: The project root — the nearest ancestor of the linted
            paths containing ``pyproject.toml``, else the common parent.
        modules: Every module parsed this run (project rules may
            cross-reference them).
    """

    root: Path
    modules: list[ModuleInfo]

    def module_named(self, *suffix: str) -> ModuleInfo | None:
        """The parsed module whose path ends with ``suffix``, if present."""
        for module in self.modules:
            if module.path.parts[-len(suffix):] == suffix:
                return module
        return None


def _iter_python_files(paths: Sequence[Path]) -> list[Path]:
    files: set[Path] = set()
    for path in paths:
        if not path.exists():
            raise LintError(f"lint path does not exist: {path}")
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = set(candidate.parts)
                if parts & _SKIP_DIRS:
                    continue
                files.add(candidate)
        else:
            files.add(path)
    return sorted(files)


def find_project_root(paths: Sequence[Path]) -> Path:
    """Nearest ancestor with ``pyproject.toml``; falls back to cwd."""
    for start in list(paths) + [Path.cwd()]:
        probe = start.resolve()
        if probe.is_file():
            probe = probe.parent
        for candidate in (probe, *probe.parents):
            if (candidate / "pyproject.toml").is_file():
                return candidate
    return Path.cwd()


def _relparts(path: Path, roots: Sequence[Path]) -> tuple[str, ...]:
    resolved = path.resolve()
    for root in roots:
        base = root.resolve()
        if base.is_file():
            base = base.parent
        try:
            return resolved.relative_to(base).parts
        except ValueError:
            continue
    return resolved.parts


def _parse_modules(
    files: Iterable[Path], roots: Sequence[Path]
) -> tuple[list[ModuleInfo], list[Finding]]:
    modules: list[ModuleInfo] = []
    parse_failures: list[Finding] = []
    for path in files:
        display = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise LintError(f"cannot read {display}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            parse_failures.append(
                Finding(
                    rule="RPR000",
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        modules.append(
            ModuleInfo(
                path=path,
                display=display,
                relparts=_relparts(path, roots),
                source=source,
                tree=tree,
                suppressions=scan_suppressions(source),
            )
        )
    return modules, parse_failures


def _apply_suppressions(
    finding: Finding, rule: Rule, modules_by_display: dict[str, ModuleInfo]
) -> Finding:
    module = modules_by_display.get(finding.path)
    if module is None:
        return finding
    comment = suppression_for(
        module.suppressions, finding.line, rule.code, rule.name
    )
    if comment is None:
        return finding
    return Finding(
        rule=finding.rule,
        path=finding.path,
        line=finding.line,
        col=finding.col,
        message=finding.message,
        suppressed=True,
        justification=comment.justification,
    )


def run_lint(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    project_root: Path | None = None,
) -> LintResult:
    """Lint ``paths`` with the selected rules.

    Args:
        paths: Files and/or directories to lint (directories recurse).
        select: Rule codes/names to run (default: all registered).
        ignore: Rule codes/names to drop from the selection.
        project_root: Override for project-rule file discovery (tests);
            autodetected from ``pyproject.toml`` otherwise.

    Returns:
        The :class:`~repro.lint.model.LintResult` with every finding
        (suppressed ones flagged, not removed).

    Raises:
        LintError: Unknown rule identifiers, missing paths, unreadable
            files — the CLI's exit-2 class of failures.
    """
    given = [Path(p) for p in paths]
    if not given:
        raise LintError("no paths to lint")
    rules = registry.resolve_rules(select=select, ignore=ignore)
    files = _iter_python_files(given)
    modules, findings = _parse_modules(files, given)
    modules_by_display = {m.display: m for m in modules}

    root = project_root if project_root is not None else find_project_root(given)
    project = ProjectInfo(root=root, modules=modules)

    for rule in rules:
        raw: list[Finding] = []
        if rule.project_level:
            raw.extend(rule.check(project))
        else:
            for module in modules:
                raw.extend(rule.check(module))
        for finding in raw:
            findings.append(
                _apply_suppressions(finding, rule, modules_by_display)
            )

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintResult(
        findings=findings,
        files_checked=len(modules),
        rules_run=[rule.code for rule in rules],
    )
