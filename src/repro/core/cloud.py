"""Cloud detection: cheap-but-precise on-board, accurate on the ground.

The paper's design point (§4.3, §5) is an *asymmetric* pair of detectors:

* the **on-board detector** must be cheap (it shares a small CPU with the
  encoder) and *precision-biased*: flagging clear ground as cloud discards
  real changes forever, while missing a cloud merely wastes downlink (the
  tile gets flagged changed and downloaded).  The paper uses a decision
  tree over the InfraRed contrast of heavy clouds, run on a 64x-downsampled
  image, and reports >99 % precision;
* the **ground detector** can be expensive and accuracy-biased (the paper
  cites a multi-layer NN [74]); it re-screens downloaded imagery so only
  genuinely cloud-free images become references.

Both detectors here are real trained models: a small CART decision tree
(:class:`DecisionTree`, implemented in this module) fitted on synthetic
labelled captures rendered by :mod:`repro.imagery`.  The on-board variant
classifies per tile with a precision-biased leaf rule; the ground variant
classifies per pixel with a deeper tree.  Their precision/recall against the
oracle masks is measured in the test suite, including the >99 % on-board
precision property.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tiles import TileGrid
from repro.errors import PipelineError
from repro.imagery.bands import Band, BandCategory
from repro.imagery.clouds import CloudModel
from repro.imagery.earth_model import EarthModel, LocationSpec, TerrainClass
from repro.imagery.illumination import IlluminationModel
from repro.imagery.noise import stable_hash


# ----------------------------------------------------------------------
# A small CART implementation (gini impurity, axis-aligned splits)
# ----------------------------------------------------------------------
@dataclass
class _TreeNode:
    feature: int = -1
    threshold: float = 0.0
    left: "_TreeNode | None" = None
    right: "_TreeNode | None" = None
    positive_fraction: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTree:
    """Binary CART classifier with gini splits.

    Args:
        max_depth: Maximum tree depth.
        min_leaf: Minimum samples per leaf.
    """

    def __init__(self, max_depth: int = 3, min_leaf: int = 8) -> None:
        if max_depth < 1:
            raise PipelineError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self._root: _TreeNode | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTree":
        """Fit on ``features`` (n, d) with boolean ``labels`` (n,)."""
        if features.ndim != 2 or labels.ndim != 1:
            raise PipelineError("features must be (n, d) and labels (n,)")
        if features.shape[0] != labels.shape[0]:
            raise PipelineError("features/labels length mismatch")
        if features.shape[0] == 0:
            raise PipelineError("cannot fit on empty data")
        self._root = self._build(features.astype(np.float64), labels.astype(bool), 0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(positive_fraction=float(y.mean()))
        if (
            depth >= self.max_depth
            or y.size < 2 * self.min_leaf
            or node.positive_fraction in (0.0, 1.0)
        ):
            return node
        best = self._best_split(x, y)
        if best is None:
            return node
        feature, threshold = best
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def _best_split(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[int, float] | None:
        n, d = x.shape
        parent_gini = self._gini(float(y.mean()))
        best_gain = 1e-9
        best: tuple[int, float] | None = None
        for feature in range(d):
            values = x[:, feature]
            candidates = np.quantile(values, np.linspace(0.05, 0.95, 19))
            for threshold in np.unique(candidates):
                mask = values <= threshold
                n_left = int(mask.sum())
                if n_left < self.min_leaf or n - n_left < self.min_leaf:
                    continue
                p_left = float(y[mask].mean())
                p_right = float(y[~mask].mean())
                gini = (
                    n_left * self._gini(p_left)
                    + (n - n_left) * self._gini(p_right)
                ) / n
                gain = parent_gini - gini
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold))
        return best

    @staticmethod
    def _gini(p: float) -> float:
        return 2.0 * p * (1.0 - p)

    def predict_fraction(self, features: np.ndarray) -> np.ndarray:
        """Leaf positive-fraction for each row of ``features``.

        Vectorized: the tree is walked once per node with boolean row
        masks, not once per row.
        """
        if self._root is None:
            raise PipelineError("tree is not fitted")
        out = np.zeros(features.shape[0], dtype=np.float64)

        def walk(node: _TreeNode, rows: np.ndarray) -> None:
            if not rows.any():
                return
            if node.is_leaf:
                out[rows] = node.positive_fraction
                return
            assert node.left is not None and node.right is not None
            goes_left = features[:, node.feature] <= node.threshold
            walk(node.left, rows & goes_left)
            walk(node.right, rows & ~goes_left)

        walk(self._root, np.ones(features.shape[0], dtype=bool))
        return out

    def predict(self, features: np.ndarray, min_confidence: float = 0.5) -> np.ndarray:
        """Boolean predictions; positive only when leaf purity >= threshold.

        A high ``min_confidence`` yields the precision-biased behaviour the
        on-board detector needs.
        """
        return self.predict_fraction(features) >= min_confidence

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def walk(node: _TreeNode | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise PipelineError("tree is not fitted")
        return walk(self._root)


# ----------------------------------------------------------------------
# Feature extraction
# ----------------------------------------------------------------------
def _split_bands(bands: tuple[Band, ...]) -> tuple[list[str], list[str]]:
    """Partition band names into bright-under-cloud and cold-under-cloud."""
    bright = [b.name for b in bands if not b.cloud_cold]
    cold = [b.name for b in bands if b.cloud_cold]
    if not bright:
        raise PipelineError("need at least one non-cold band for cloud features")
    return bright, cold


def cloud_features(
    pixels: dict[str, np.ndarray], bands: tuple[Band, ...]
) -> np.ndarray:
    """Per-pixel cloud features: brightness, coldness, and their contrast.

    Returns an (H, W, 3) stack: mean bright-band value, mean cold-band value
    (0.5 when no cold band exists), and their difference — the "heavy clouds
    are cold in InfraRed but bright in visible" signal the paper's cheap
    detector keys on.
    """
    bright_names, cold_names = _split_bands(bands)
    bright = np.mean([pixels[name] for name in bright_names], axis=0)
    if cold_names:
        cold = np.mean([pixels[name] for name in cold_names], axis=0)
    else:
        cold = np.full_like(bright, 0.5)
    return np.stack([bright, cold, bright - cold], axis=-1)


# ----------------------------------------------------------------------
# Detector wrapper
# ----------------------------------------------------------------------
@dataclass
class CloudDetector:
    """A trained cloud detector operating per block or per pixel.

    Attributes:
        tree: Fitted decision tree over the 3 cloud features.
        granularity: ``"block"`` (on-board: one decision per small pixel
            block from block-mean features — the scale-equivalent of the
            paper's 64x-downsampled detection) or ``"pixel"`` (ground).
        block_px: Block edge for block granularity.
        min_confidence: Leaf-purity threshold; high values bias precision.
        name: Human-readable identifier.
    """

    tree: DecisionTree
    granularity: str
    min_confidence: float
    name: str
    block_px: int = 16

    def detect(
        self,
        pixels: dict[str, np.ndarray],
        bands: tuple[Band, ...],
        grid: TileGrid,
    ) -> np.ndarray:
        """Return a pixel-level boolean cloud mask.

        Block-granularity detectors decide per block and expand; the
        returned mask is always full resolution so callers compose masks
        uniformly.
        """
        if self.granularity == "block":
            # The paper's trick: detect on a DOWNSAMPLED image.  Reducing
            # the pixels first (cheap block means) keeps the whole feature
            # and classification pipeline at 1/block_px^2 scale.
            block_grid = TileGrid(grid.image_shape, self.block_px)
            reduced = {
                name: block_grid.reduce_mean(image)
                for name, image in pixels.items()
            }
            features = cloud_features(reduced, bands)
            flat = features.reshape(-1, 3)
            cloudy = self.tree.predict(flat, self.min_confidence).reshape(
                block_grid.grid_shape
            )
            return block_grid.expand(cloudy.astype(np.float64)) > 0.5
        if self.granularity == "pixel":
            features = cloud_features(pixels, bands)
            flat = features.reshape(-1, 3)
            return self.tree.predict(flat, self.min_confidence).reshape(
                features.shape[:2]
            )
        raise PipelineError(f"unknown granularity {self.granularity!r}")

    def coverage(
        self,
        pixels: dict[str, np.ndarray],
        bands: tuple[Band, ...],
        grid: TileGrid,
    ) -> float:
        """Detected cloud fraction of a capture."""
        return float(self.detect(pixels, bands, grid).mean())


@dataclass(frozen=True)
class DetectorQuality:
    """Precision/recall of a detector against oracle masks.

    Attributes:
        precision: Of pixels flagged cloudy, the truly-cloudy fraction.
        recall: Of truly-cloudy pixels, the flagged fraction.
        n_samples: Pixels evaluated.
    """

    precision: float
    recall: float
    n_samples: int


def evaluate_detector(
    detector: CloudDetector,
    captures: list[tuple[dict[str, np.ndarray], np.ndarray]],
    bands: tuple[Band, ...],
    grid: TileGrid,
) -> DetectorQuality:
    """Score a detector against oracle pixel masks.

    Args:
        detector: The detector under test.
        captures: ``(pixels, oracle_mask)`` pairs.
        bands: Band definitions for feature extraction.
        grid: Tile grid of the captures.

    Returns:
        Pooled precision/recall.
    """
    tp = fp = fn = 0
    total = 0
    for pixels, oracle in captures:
        predicted = detector.detect(pixels, bands, grid)
        tp += int((predicted & oracle).sum())
        fp += int((predicted & ~oracle).sum())
        fn += int((~predicted & oracle).sum())
        total += oracle.size
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 1.0
    return DetectorQuality(precision=precision, recall=recall, n_samples=total)


# ----------------------------------------------------------------------
# Training
# ----------------------------------------------------------------------
def _training_captures(
    bands: tuple[Band, ...],
    seed: int,
    n_captures: int,
    shape: tuple[int, int],
) -> list[tuple[dict[str, np.ndarray], np.ndarray]]:
    """Render labelled training captures across varied terrain."""
    mixes = [
        {TerrainClass.FOREST: 0.5, TerrainClass.AGRICULTURE: 0.5},
        {TerrainClass.CITY: 0.4, TerrainClass.RIVER: 0.2, TerrainClass.FOREST: 0.4},
        {TerrainClass.MOUNTAIN: 0.6, TerrainClass.COASTAL: 0.4},
    ]
    out: list[tuple[dict[str, np.ndarray], np.ndarray]] = []
    for idx in range(n_captures):
        mix = mixes[idx % len(mixes)]
        spec = LocationSpec(
            name=f"train-{idx}",
            shape=shape,
            terrain_mix=mix,
            seed=stable_hash(seed, "cloudtrain", idx),
        )
        earth = EarthModel(spec, bands)
        clouds = CloudModel(
            seed=stable_hash(seed, "cloudtrain-sky", idx),
            shape=shape,
            clear_probability=0.15,
        )
        illum = IlluminationModel(seed=stable_hash(seed, "cloudtrain-sun", idx))
        t_days = float(idx * 13 % 365)
        sample = clouds.sample(t_days)
        light = illum.sample(t_days)
        pixels = {}
        for band in bands:
            lit = light.apply(earth.ground_truth(band.name, t_days))
            pixels[band.name] = clouds.render_onto(lit, band, sample)
        out.append((pixels, sample.mask))
    return out


# repro: allow(RPR005): per-process memo of deterministically-trained detectors — training is a pure function of the key, so independently-warmed worker copies are bit-identical
_DETECTOR_CACHE: dict[tuple, CloudDetector] = {}


def train_onboard_detector(
    bands: tuple[Band, ...],
    tile_size: int = 64,
    seed: int = 1234,
) -> CloudDetector:
    """Train the cheap, precision-biased on-board detector.

    Tile-granularity features (the paper's 64x downsampling), shallow tree,
    and a 0.97 leaf-purity requirement so that almost everything flagged
    cloudy truly is (>99 % precision is asserted in tests).

    Results are cached per (bands, tile_size, seed) since training data and
    CART fitting are deterministic.
    """
    key = ("onboard", tuple(b.name for b in bands), tile_size, seed)
    if key in _DETECTOR_CACHE:
        return _DETECTOR_CACHE[key]
    block_px = max(4, tile_size // 4)
    shape = (tile_size * 4, tile_size * 4)
    grid = TileGrid(shape, block_px)
    captures = _training_captures(bands, seed, n_captures=30, shape=shape)
    features: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    for pixels, oracle in captures:
        stack = cloud_features(pixels, bands)
        block_feat = np.stack(
            [grid.reduce_mean(stack[..., k]) for k in range(3)], axis=-1
        )
        block_label = grid.reduce_fraction(oracle) > 0.5
        features.append(block_feat.reshape(-1, 3))
        labels.append(block_label.reshape(-1))
    tree = DecisionTree(max_depth=4, min_leaf=8).fit(
        np.concatenate(features), np.concatenate(labels)
    )
    detector = CloudDetector(
        tree=tree,
        granularity="block",
        min_confidence=0.9,
        name="onboard-tree",
        block_px=block_px,
    )
    _DETECTOR_CACHE[key] = detector
    return detector


def train_ground_detector(
    bands: tuple[Band, ...],
    seed: int = 1234,
) -> CloudDetector:
    """Train the accurate ground-side detector (per pixel, deeper tree).

    Stands in for the paper's neural detector [74]: accuracy-biased, run
    only on the ground where compute is plentiful.
    """
    key = ("ground", tuple(b.name for b in bands), seed)
    if key in _DETECTOR_CACHE:
        return _DETECTOR_CACHE[key]
    shape = (128, 128)
    captures = _training_captures(bands, seed, n_captures=12, shape=shape)
    features: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    rng = np.random.default_rng(stable_hash(seed, "ground-subsample"))
    for pixels, oracle in captures:
        stack = cloud_features(pixels, bands).reshape(-1, 3)
        flat = oracle.reshape(-1)
        pick = rng.random(flat.size) < 0.25
        features.append(stack[pick])
        labels.append(flat[pick])
    tree = DecisionTree(max_depth=5, min_leaf=12).fit(
        np.concatenate(features), np.concatenate(labels)
    )
    detector = CloudDetector(
        tree=tree, granularity="pixel", min_confidence=0.5, name="ground-tree"
    )
    _DETECTOR_CACHE[key] = detector
    return detector
