"""Streaming run accounting: per-visit records and aggregate results.

The :class:`MetricsAccumulator` observes every completed
:class:`~repro.core.phases.VisitEvent` as the kernel emits it and folds it
into running totals — no loop-local counters.  At the end of the schedule
:meth:`MetricsAccumulator.finalize` produces the :class:`RunResult` every
experiment consumes.

New metrics are pluggable: anything implementing :class:`MetricCollector`
can ride along in the same pass over events, and its value lands in
``RunResult.extra_metrics`` without touching the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Protocol, Sequence

import numpy as np

from repro.codec.metrics import weighted_mean_psnr

if TYPE_CHECKING:
    from repro.core.phases import DownlinkReport, VisitEvent


class _TupleState:
    """Deterministic pickling for result dataclasses (tuple state).

    Default dataclass pickling ships ``__dict__``, whose *keys* the
    unpickler interns while ordinary dict keys are not — so a result that
    crossed a worker-process boundary pickles with different string
    sharing than one built in-process whenever a stats-dict key (e.g.
    ``updates_skipped``) equals a field name.  Tuple state carries no
    field-name strings at all, keeping "parallel batch == sequential
    batch" byte-identical at the pickle level.
    """

    def __getstate__(self):
        return tuple(getattr(self, f.name) for f in fields(self))

    def __setstate__(self, state):
        if isinstance(state, dict):  # a pickle from an older layout
            self.__dict__.update(state)
            return
        for f, value in zip(fields(self), state):
            setattr(self, f.name, value)


@dataclass
class DownlinkStats:
    """Running contact-capacity accounting across a whole run.

    The downlink twin of
    :class:`~repro.core.ground_segment.UplinkStats`: the
    :class:`MetricsAccumulator` folds every visit's
    :class:`~repro.core.phases.DownlinkReport` into these totals.

    Attributes:
        capacity_bytes: Total contact capacity offered across the run.
        bytes_offered: Encoded bytes the satellites wanted to send.
        bytes_delivered: Bytes actually moved down after shedding/drops.
        layers_shed: Trailing quality layers shed to fit contacts.
        captures_shed: Captures delivered at reduced quality (>= 1 layer
            shed).
        captures_deferred: Guaranteed downloads that did not fit even at
            base quality; the guarantee was re-armed for a later capture.
        captures_dropped: Non-guaranteed captures discarded at downlink
            time for not fitting at base quality.
    """

    capacity_bytes: int = 0
    bytes_offered: int = 0
    bytes_delivered: int = 0
    layers_shed: int = 0
    captures_shed: int = 0
    captures_deferred: int = 0
    captures_dropped: int = 0

    @classmethod
    def identity(cls) -> "DownlinkStats":
        """The merge identity: the stats of a run that moved nothing."""
        return cls()

    @classmethod
    def from_run_stats(cls, stats: dict[str, int]) -> "DownlinkStats":
        """Rebuild from the ``RunResult.downlink_stats`` dict."""
        return cls(**stats)

    def merge(self, other: "DownlinkStats") -> "DownlinkStats":
        """Field-wise sum (associative, commutative, identity-respecting)."""
        return DownlinkStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def observe(self, report: "DownlinkReport") -> None:
        """Fold one visit's downlink report into the totals."""
        self.capacity_bytes += report.capacity_bytes
        self.bytes_offered += report.offered_bytes
        self.bytes_delivered += report.delivered_bytes
        self.layers_shed += report.layers_shed
        if report.layers_shed > 0:
            self.captures_shed += 1
        if report.deferred:
            self.captures_deferred += 1
        if report.dropped:
            self.captures_dropped += 1

    def as_run_stats(self) -> dict[str, int]:
        """The contact-level dict carried on ``RunResult.downlink_stats``."""
        return {
            "capacity_bytes": self.capacity_bytes,
            "bytes_offered": self.bytes_offered,
            "bytes_delivered": self.bytes_delivered,
            "layers_shed": self.layers_shed,
            "captures_shed": self.captures_shed,
            "captures_deferred": self.captures_deferred,
            "captures_dropped": self.captures_dropped,
        }


@dataclass
class CaptureRecord(_TupleState):
    """Everything remembered about one processed visit.

    Attributes:
        location: Location name.
        satellite_id: Observing satellite.
        t_days: Capture time.
        dropped: Capture discarded (on board for cloud, or at downlink
            for lack of contact capacity).
        guaranteed: Was a guaranteed full download.
        cloud_coverage: On-board detected cloud fraction.
        psnr: Ground-side reconstruction PSNR (NaN when dropped; the
            sentinel 0.0 when the capture was delivered but had no
            scoreable non-cloud pixels).
        downloaded_fraction: Mean downloaded-tile fraction over bands.
        bytes_downlinked: Total downlink bytes.
        band_bytes: Per-band downlink bytes.
        band_psnr: Per-band coded-tile PSNR.
        changed_fraction: Mean detector changed fraction over bands.
        downlink_capacity_bytes: Contact capacity offered to this capture
            (0 when the run had no downlink constraint).
        layers_shed: Trailing quality layers shed to fit the capacity.
        downlink_deferred: Guaranteed download deferred at downlink time.
    """

    location: str
    satellite_id: int
    t_days: float
    dropped: bool
    guaranteed: bool
    cloud_coverage: float
    psnr: float
    downloaded_fraction: float
    bytes_downlinked: int
    band_bytes: dict[str, int] = field(default_factory=dict)
    band_psnr: dict[str, float] = field(default_factory=dict)
    changed_fraction: float = 0.0
    downlink_capacity_bytes: int = 0
    layers_shed: int = 0
    downlink_deferred: bool = False


def record_order_key(record: CaptureRecord) -> tuple[float, str, int]:
    """The canonical visit order on records.

    Mirrors :func:`repro.orbit.schedule.visit_order_key` — one visit, one
    record, one position — so per-shard record lists merge-sort back into
    exactly the sequence a sequential run emits.
    """
    return (record.t_days, record.location, record.satellite_id)


def _share_record_strings(records: list[CaptureRecord]) -> list[CaptureRecord]:
    """Records rebuilt so equal strings share one instance.

    In a sequential run every record's ``location`` (and every band-dict
    key) references the dataset's single string instance, so pickling the
    record list writes each string once and memo-references it after.
    Records that crossed a process boundary arrive with per-shard string
    copies; merging them verbatim would pickle the same text repeatedly
    and break "sharded == sequential" at the byte level even though every
    record compares equal.  Pooling restores the sequential sharing
    structure (first occurrence in canonical order introduces the
    instance, exactly like the sequential stream).
    """
    pool: dict[str, str] = {}

    def shared(text: str) -> str:
        return pool.setdefault(text, text)

    return [
        replace(
            record,
            location=shared(record.location),
            band_bytes={
                shared(band): count
                for band, count in record.band_bytes.items()
            },
            band_psnr={
                shared(band): psnr
                for band, psnr in record.band_psnr.items()
            },
        )
        for record in records
    ]


@dataclass
class RunResult(_TupleState):
    """Aggregate outcome of one simulation run.

    Attributes:
        policy: Policy name.
        records: Per-visit records in time order.
        downlink_bytes: Total bytes moved down.
        uplink_bytes: Total bytes moved up (reference updates).
        updates_skipped: Reference updates skipped for lack of uplink.
        horizon_days: Simulated duration.
        contacts_per_day: Ground contacts per satellite per day.
        contact_duration_s: Seconds per contact.
        reference_storage_bytes: Peak per-satellite reference storage.
        captured_storage_bytes: Peak per-capture encoded bytes held.
        uplink_stats: Update-level uplink accounting: counts and bytes of
            full vs delta reference updates.
        downlink_stats: Contact-level downlink accounting (see
            :meth:`DownlinkStats.as_run_stats`; empty when the run had no
            downlink constraint).
        extra_metrics: Values of plugged-in :class:`MetricCollector`s,
            keyed by collector name.
    """

    policy: str
    records: list[CaptureRecord]
    downlink_bytes: int
    uplink_bytes: int
    updates_skipped: int
    horizon_days: float
    contacts_per_day: int
    contact_duration_s: float
    reference_storage_bytes: int
    captured_storage_bytes: int
    uplink_stats: dict[str, int] = field(default_factory=dict)
    downlink_stats: dict[str, int] = field(default_factory=dict)
    extra_metrics: dict[str, object] = field(default_factory=dict)

    @classmethod
    def identity(cls) -> "RunResult":
        """The merge identity: the result of simulating nothing.

        Configuration-like fields (policy, horizon, contact geometry) are
        zero-valued sentinels; :meth:`merge` adopts the other operand's
        values for them, so folding a shard list from ``identity()``
        yields exactly the pairwise merge of the shards.
        """
        return cls(
            policy="",
            records=[],
            downlink_bytes=0,
            uplink_bytes=0,
            updates_skipped=0,
            horizon_days=0.0,
            contacts_per_day=0,
            contact_duration_s=0.0,
            reference_storage_bytes=0,
            captured_storage_bytes=0,
        )

    def _is_identity(self) -> bool:
        return (
            not self.policy
            and not self.records
            and self.horizon_days == 0.0
            and self.contacts_per_day == 0
            and not self.uplink_stats
            and not self.downlink_stats
            and not self.extra_metrics
        )

    def merge(self, other: "RunResult") -> "RunResult":
        """Combine two disjoint partial results (associative, with identity).

        The monoid the sharded runner folds over: per-visit records
        concatenate and re-sort into canonical visit order
        (:func:`record_order_key`), byte/count totals add, storage peaks
        take the max, and the stats dicts merge through their
        :class:`UplinkStats`/:class:`DownlinkStats` round-trip.  Merging
        the per-shard partials of one scenario reproduces the sequential
        :class:`RunResult` field-for-field (differential-tested to
        pickle-byte identity).

        Raises:
            ValueError: When the operands disagree on configuration
                (policy, horizon, contact geometry) or carry
                ``extra_metrics`` — collector values are arbitrary
                objects with no general merge.
        """
        if self._is_identity():
            return other
        if other._is_identity():
            return self
        if self.extra_metrics or other.extra_metrics:
            raise ValueError(
                "RunResult.merge cannot combine extra_metrics; run "
                "collectors on the merged result instead"
            )
        for name in ("horizon_days", "contacts_per_day", "contact_duration_s"):
            mine, theirs = getattr(self, name), getattr(other, name)
            if mine != theirs:
                raise ValueError(
                    f"cannot merge results with different {name}: "
                    f"{mine!r} != {theirs!r}"
                )
        # An empty shard (no visits observed) never learns the policy
        # name; any named operand supplies it.
        if self.policy and other.policy and self.policy != other.policy:
            raise ValueError(
                f"cannot merge results of different policies: "
                f"{self.policy!r} != {other.policy!r}"
            )

        def merge_stats(cls, mine: dict, theirs: dict) -> dict:
            if not mine:
                return theirs
            if not theirs:
                return mine
            return (
                cls.from_run_stats(mine)
                .merge(cls.from_run_stats(theirs))
                .as_run_stats()
            )

        from repro.core.ground_segment import UplinkStats

        return RunResult(
            policy=self.policy or other.policy,
            records=_share_record_strings(
                sorted(self.records + other.records, key=record_order_key)
            ),
            downlink_bytes=self.downlink_bytes + other.downlink_bytes,
            uplink_bytes=self.uplink_bytes + other.uplink_bytes,
            updates_skipped=self.updates_skipped + other.updates_skipped,
            horizon_days=self.horizon_days,
            contacts_per_day=self.contacts_per_day,
            contact_duration_s=self.contact_duration_s,
            reference_storage_bytes=max(
                self.reference_storage_bytes, other.reference_storage_bytes
            ),
            captured_storage_bytes=max(
                self.captured_storage_bytes, other.captured_storage_bytes
            ),
            uplink_stats=merge_stats(
                UplinkStats, self.uplink_stats, other.uplink_stats
            ),
            downlink_stats=merge_stats(
                DownlinkStats, self.downlink_stats, other.downlink_stats
            ),
            extra_metrics={},
        )

    def delivered(self) -> list[CaptureRecord]:
        """Records of captures that were actually downlinked."""
        return [r for r in self.records if not r.dropped]

    def mean_psnr(self) -> float:
        """Pooled (MSE-domain) PSNR over delivered captures.

        Excludes the 0.0 "nothing scoreable" sentinel (see
        :class:`~repro.core.ground_segment.ScoreRecord`) exactly as the
        previous ``inf`` sentinel was excluded by the finiteness filter.
        """
        values = [
            r.psnr
            for r in self.delivered()
            if np.isfinite(r.psnr) and r.psnr > 0.0
        ]
        if not values:
            return float("inf")
        return weighted_mean_psnr(values)

    def layers_shed(self) -> int:
        """Total quality layers shed at downlink across the run."""
        return sum(r.layers_shed for r in self.records)

    def mean_downloaded_fraction(self) -> float:
        """Mean downloaded-tile fraction over delivered captures."""
        values = [r.downloaded_fraction for r in self.delivered()]
        return float(np.mean(values)) if values else 0.0

    def required_downlink_bps(self) -> float:
        """Average downlink bandwidth demand (the paper's §6.1 metric).

        Total downlinked bytes divided by total contact seconds over the
        horizon, i.e. the sustained rate the constellation must provision.
        """
        contact_seconds = (
            self.horizon_days * self.contacts_per_day * self.contact_duration_s
        )
        if contact_seconds <= 0:
            return 0.0
        return self.downlink_bytes * 8.0 / contact_seconds

    def per_band_bytes(self) -> dict[str, int]:
        """Downlink bytes per band across the run."""
        totals: dict[str, int] = {}
        for record in self.records:
            for band, nbytes in record.band_bytes.items():
                totals[band] = totals.get(band, 0) + nbytes
        return totals

    def per_location_bytes(self) -> dict[str, int]:
        """Downlink bytes per location across the run."""
        totals: dict[str, int] = {}
        for record in self.records:
            totals[record.location] = (
                totals.get(record.location, 0) + record.bytes_downlinked
            )
        return totals

    def per_location_psnr(self) -> dict[str, float]:
        """Pooled PSNR per location (0.0 sentinel excluded)."""
        groups: dict[str, list[float]] = {}
        for record in self.delivered():
            if np.isfinite(record.psnr) and record.psnr > 0.0:
                groups.setdefault(record.location, []).append(record.psnr)
        return {
            loc: weighted_mean_psnr(values) for loc, values in groups.items()
        }

    def timeseries(self, location: str) -> list[CaptureRecord]:
        """Delivered records for one location, in time order."""
        return [r for r in self.delivered() if r.location == location]


class MetricCollector(Protocol):
    """A pluggable metric fed every visit event alongside the core totals."""

    name: str

    def observe(self, event: "VisitEvent") -> None:
        """Fold one completed visit into the metric."""
        ...

    def value(self) -> object:
        """The metric's final value (lands in ``RunResult.extra_metrics``)."""
        ...


class MetricsAccumulator:
    """Streaming aggregation of visit events into a :class:`RunResult`.

    Args:
        contacts_per_day: Ground contacts per satellite per day (for the
            bandwidth-demand metric).
        contact_duration_s: Seconds per contact.
        collectors: Extra pluggable metrics observed in the same pass.
    """

    def __init__(
        self,
        contacts_per_day: int,
        contact_duration_s: float,
        collectors: Sequence[MetricCollector] = (),
    ) -> None:
        self.contacts_per_day = contacts_per_day
        self.contact_duration_s = contact_duration_s
        self.collectors = list(collectors)
        self.records: list[CaptureRecord] = []
        self.downlink_bytes = 0
        self.peak_reference_bytes = 0
        self.peak_captured_bytes = 0
        self.policy_name = ""
        self.downlink = DownlinkStats()
        self._saw_downlink = False

    @classmethod
    def identity(cls) -> "MetricsAccumulator":
        """The merge unit: an accumulator that observed nothing.

        Contact geometry is zero-valued sentinel state, exactly like
        :meth:`RunResult.identity`: :meth:`merge` adopts the other
        operand's values, so folding per-shard accumulators from
        ``identity()`` yields the pairwise merge of the shards.
        """
        return cls(contacts_per_day=0, contact_duration_s=0.0)

    def _is_identity(self) -> bool:
        return (
            not self.records
            and not self.collectors
            and not self.policy_name
            and self.contacts_per_day == 0
            and self.contact_duration_s == 0.0
            and self.downlink_bytes == 0
            and self.peak_reference_bytes == 0
            and self.peak_captured_bytes == 0
            and not self._saw_downlink
        )

    def merge(self, other: "MetricsAccumulator") -> "MetricsAccumulator":
        """Combine two partial accumulators over disjoint visit sets.

        The pre-``finalize`` twin of :meth:`RunResult.merge`, for callers
        that accumulate per shard and finalize once: records re-sort into
        canonical visit order, totals add, peaks take the max.
        Accumulators carrying pluggable collectors refuse to merge —
        collector state is opaque.
        """
        if self._is_identity():
            return other
        if other._is_identity():
            return self
        if self.collectors or other.collectors:
            raise ValueError(
                "MetricsAccumulator.merge cannot combine collectors; "
                "observe collectors on one accumulator only"
            )
        for name in ("contacts_per_day", "contact_duration_s"):
            if getattr(self, name) != getattr(other, name):
                raise ValueError(
                    f"cannot merge accumulators with different {name}"
                )
        if (
            self.policy_name
            and other.policy_name
            and self.policy_name != other.policy_name
        ):
            raise ValueError(
                f"cannot merge accumulators of different policies: "
                f"{self.policy_name!r} != {other.policy_name!r}"
            )
        merged = MetricsAccumulator(
            contacts_per_day=self.contacts_per_day,
            contact_duration_s=self.contact_duration_s,
        )
        merged.records = sorted(
            self.records + other.records, key=record_order_key
        )
        merged.downlink_bytes = self.downlink_bytes + other.downlink_bytes
        merged.peak_reference_bytes = max(
            self.peak_reference_bytes, other.peak_reference_bytes
        )
        merged.peak_captured_bytes = max(
            self.peak_captured_bytes, other.peak_captured_bytes
        )
        merged.policy_name = self.policy_name or other.policy_name
        merged.downlink = self.downlink.merge(other.downlink)
        merged._saw_downlink = self._saw_downlink or other._saw_downlink
        return merged

    def observe(self, event: "VisitEvent") -> None:
        """Fold one completed visit event into the running totals."""
        result = event.result
        score = event.score
        report = event.downlink
        if result is None:
            return
        if report is not None:
            self._saw_downlink = True
            self.downlink.observe(report)
        self.policy_name = event.state.policy.name
        self.downlink_bytes += result.total_bytes
        self.peak_reference_bytes = max(
            self.peak_reference_bytes,
            event.state.policy.reference_storage_bytes(),
        )
        self.peak_captured_bytes = max(
            self.peak_captured_bytes, result.onboard_encoded_bytes
        )
        self.records.append(
            CaptureRecord(
                location=event.visit.location,
                satellite_id=event.visit.satellite_id,
                t_days=event.visit.t_days,
                dropped=result.dropped,
                guaranteed=result.guaranteed,
                cloud_coverage=result.cloud_coverage_detected,
                psnr=score.psnr if score is not None else float("nan"),
                downloaded_fraction=(
                    score.downloaded_tile_fraction if score is not None else 0.0
                ),
                bytes_downlinked=result.total_bytes,
                band_bytes={b.band: b.bytes_downlinked for b in result.bands},
                band_psnr={b.band: b.psnr_downloaded for b in result.bands},
                changed_fraction=(
                    float(np.mean([b.changed_fraction for b in result.bands]))
                    if result.bands
                    else 0.0
                ),
                downlink_capacity_bytes=(
                    report.capacity_bytes if report is not None else 0
                ),
                layers_shed=report.layers_shed if report is not None else 0,
                downlink_deferred=(
                    report.deferred if report is not None else False
                ),
            )
        )
        for collector in self.collectors:
            collector.observe(event)

    def finalize(
        self,
        horizon_days: float,
        uplink_bytes: int,
        updates_skipped: int,
        uplink_stats: dict[str, int],
    ) -> RunResult:
        """Package the accumulated state into the final :class:`RunResult`.

        Args:
            horizon_days: Simulated duration.
            uplink_bytes: Total reference-update bytes moved up.
            updates_skipped: Updates skipped for lack of uplink budget.
            uplink_stats: Update-level accounting from the ground segment.

        Returns:
            The aggregated result.
        """
        return RunResult(
            policy=self.policy_name,
            records=self.records,
            downlink_bytes=self.downlink_bytes,
            uplink_bytes=uplink_bytes,
            updates_skipped=updates_skipped,
            horizon_days=horizon_days,
            contacts_per_day=self.contacts_per_day,
            contact_duration_s=self.contact_duration_s,
            reference_storage_bytes=self.peak_reference_bytes,
            captured_storage_bytes=self.peak_captured_bytes,
            uplink_stats=uplink_stats,
            downlink_stats=(
                self.downlink.as_run_stats() if self._saw_downlink else {}
            ),
            extra_metrics={
                c.name: c.value() for c in self.collectors
            },
        )
