"""Streaming run accounting: per-visit records and aggregate results.

The :class:`MetricsAccumulator` observes every completed
:class:`~repro.core.phases.VisitEvent` as the kernel emits it and folds it
into running totals — no loop-local counters.  At the end of the schedule
:meth:`MetricsAccumulator.finalize` produces the :class:`RunResult` every
experiment consumes.

New metrics are pluggable: anything implementing :class:`MetricCollector`
can ride along in the same pass over events, and its value lands in
``RunResult.extra_metrics`` without touching the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, Sequence

import numpy as np

from repro.codec.metrics import weighted_mean_psnr

if TYPE_CHECKING:
    from repro.core.phases import VisitEvent


@dataclass
class CaptureRecord:
    """Everything remembered about one processed visit.

    Attributes:
        location: Location name.
        satellite_id: Observing satellite.
        t_days: Capture time.
        dropped: Capture discarded for cloud.
        guaranteed: Was a guaranteed full download.
        cloud_coverage: On-board detected cloud fraction.
        psnr: Ground-side reconstruction PSNR (NaN when dropped).
        downloaded_fraction: Mean downloaded-tile fraction over bands.
        bytes_downlinked: Total downlink bytes.
        band_bytes: Per-band downlink bytes.
        band_psnr: Per-band coded-tile PSNR.
        changed_fraction: Mean detector changed fraction over bands.
    """

    location: str
    satellite_id: int
    t_days: float
    dropped: bool
    guaranteed: bool
    cloud_coverage: float
    psnr: float
    downloaded_fraction: float
    bytes_downlinked: int
    band_bytes: dict[str, int] = field(default_factory=dict)
    band_psnr: dict[str, float] = field(default_factory=dict)
    changed_fraction: float = 0.0


@dataclass
class RunResult:
    """Aggregate outcome of one simulation run.

    Attributes:
        policy: Policy name.
        records: Per-visit records in time order.
        downlink_bytes: Total bytes moved down.
        uplink_bytes: Total bytes moved up (reference updates).
        updates_skipped: Reference updates skipped for lack of uplink.
        horizon_days: Simulated duration.
        contacts_per_day: Ground contacts per satellite per day.
        contact_duration_s: Seconds per contact.
        reference_storage_bytes: Peak per-satellite reference storage.
        captured_storage_bytes: Peak per-capture encoded bytes held.
        uplink_stats: Update-level uplink accounting: counts and bytes of
            full vs delta reference updates.
        extra_metrics: Values of plugged-in :class:`MetricCollector`s,
            keyed by collector name.
    """

    policy: str
    records: list[CaptureRecord]
    downlink_bytes: int
    uplink_bytes: int
    updates_skipped: int
    horizon_days: float
    contacts_per_day: int
    contact_duration_s: float
    reference_storage_bytes: int
    captured_storage_bytes: int
    uplink_stats: dict[str, int] = field(default_factory=dict)
    extra_metrics: dict[str, object] = field(default_factory=dict)

    def delivered(self) -> list[CaptureRecord]:
        """Records of captures that were actually downlinked."""
        return [r for r in self.records if not r.dropped]

    def mean_psnr(self) -> float:
        """Pooled (MSE-domain) PSNR over delivered captures."""
        values = [r.psnr for r in self.delivered() if np.isfinite(r.psnr)]
        if not values:
            return float("inf")
        return weighted_mean_psnr(values)

    def mean_downloaded_fraction(self) -> float:
        """Mean downloaded-tile fraction over delivered captures."""
        values = [r.downloaded_fraction for r in self.delivered()]
        return float(np.mean(values)) if values else 0.0

    def required_downlink_bps(self) -> float:
        """Average downlink bandwidth demand (the paper's §6.1 metric).

        Total downlinked bytes divided by total contact seconds over the
        horizon, i.e. the sustained rate the constellation must provision.
        """
        contact_seconds = (
            self.horizon_days * self.contacts_per_day * self.contact_duration_s
        )
        if contact_seconds <= 0:
            return 0.0
        return self.downlink_bytes * 8.0 / contact_seconds

    def per_band_bytes(self) -> dict[str, int]:
        """Downlink bytes per band across the run."""
        totals: dict[str, int] = {}
        for record in self.records:
            for band, nbytes in record.band_bytes.items():
                totals[band] = totals.get(band, 0) + nbytes
        return totals

    def per_location_bytes(self) -> dict[str, int]:
        """Downlink bytes per location across the run."""
        totals: dict[str, int] = {}
        for record in self.records:
            totals[record.location] = (
                totals.get(record.location, 0) + record.bytes_downlinked
            )
        return totals

    def per_location_psnr(self) -> dict[str, float]:
        """Pooled PSNR per location."""
        groups: dict[str, list[float]] = {}
        for record in self.delivered():
            if np.isfinite(record.psnr):
                groups.setdefault(record.location, []).append(record.psnr)
        return {
            loc: weighted_mean_psnr(values) for loc, values in groups.items()
        }

    def timeseries(self, location: str) -> list[CaptureRecord]:
        """Delivered records for one location, in time order."""
        return [r for r in self.delivered() if r.location == location]


class MetricCollector(Protocol):
    """A pluggable metric fed every visit event alongside the core totals."""

    name: str

    def observe(self, event: "VisitEvent") -> None:
        """Fold one completed visit into the metric."""
        ...

    def value(self) -> object:
        """The metric's final value (lands in ``RunResult.extra_metrics``)."""
        ...


class MetricsAccumulator:
    """Streaming aggregation of visit events into a :class:`RunResult`.

    Args:
        contacts_per_day: Ground contacts per satellite per day (for the
            bandwidth-demand metric).
        contact_duration_s: Seconds per contact.
        collectors: Extra pluggable metrics observed in the same pass.
    """

    def __init__(
        self,
        contacts_per_day: int,
        contact_duration_s: float,
        collectors: Sequence[MetricCollector] = (),
    ) -> None:
        self.contacts_per_day = contacts_per_day
        self.contact_duration_s = contact_duration_s
        self.collectors = list(collectors)
        self.records: list[CaptureRecord] = []
        self.downlink_bytes = 0
        self.peak_reference_bytes = 0
        self.peak_captured_bytes = 0
        self.policy_name = ""

    def observe(self, event: "VisitEvent") -> None:
        """Fold one completed visit event into the running totals."""
        result = event.result
        score = event.score
        if result is None:
            return
        self.policy_name = event.state.policy.name
        self.downlink_bytes += result.total_bytes
        self.peak_reference_bytes = max(
            self.peak_reference_bytes,
            event.state.policy.reference_storage_bytes(),
        )
        self.peak_captured_bytes = max(
            self.peak_captured_bytes, result.onboard_encoded_bytes
        )
        self.records.append(
            CaptureRecord(
                location=event.visit.location,
                satellite_id=event.visit.satellite_id,
                t_days=event.visit.t_days,
                dropped=result.dropped,
                guaranteed=result.guaranteed,
                cloud_coverage=result.cloud_coverage_detected,
                psnr=score.psnr if score is not None else float("nan"),
                downloaded_fraction=(
                    score.downloaded_tile_fraction if score is not None else 0.0
                ),
                bytes_downlinked=result.total_bytes,
                band_bytes={b.band: b.bytes_downlinked for b in result.bands},
                band_psnr={b.band: b.psnr_downloaded for b in result.bands},
                changed_fraction=(
                    float(np.mean([b.changed_fraction for b in result.bands]))
                    if result.bands
                    else 0.0
                ),
            )
        )
        for collector in self.collectors:
            collector.observe(event)

    def finalize(
        self,
        horizon_days: float,
        uplink_bytes: int,
        updates_skipped: int,
        uplink_stats: dict[str, int],
    ) -> RunResult:
        """Package the accumulated state into the final :class:`RunResult`.

        Args:
            horizon_days: Simulated duration.
            uplink_bytes: Total reference-update bytes moved up.
            updates_skipped: Updates skipped for lack of uplink budget.
            uplink_stats: Update-level accounting from the ground segment.

        Returns:
            The aggregated result.
        """
        return RunResult(
            policy=self.policy_name,
            records=self.records,
            downlink_bytes=self.downlink_bytes,
            uplink_bytes=uplink_bytes,
            updates_skipped=updates_skipped,
            horizon_days=horizon_days,
            contacts_per_day=self.contacts_per_day,
            contact_duration_s=self.contact_duration_s,
            reference_storage_bytes=self.peak_reference_bytes,
            captured_storage_bytes=self.peak_captured_bytes,
            uplink_stats=uplink_stats,
            extra_metrics={
                c.name: c.value() for c in self.collectors
            },
        )
