"""Runtime cost model for the on-board pipeline (paper Figure 16).

The paper benchmarks per-image processing time on an AMD EPYC 7452: both
Earth+ and the baselines spend 0.65 s encoding; Kodan's accurate cloud
detector costs 0.39 s versus 0.12 s for the cheap tree shared by Earth+ and
SatRoI; and Earth+'s low-resolution change detection undercuts SatRoI's
full-resolution pass.

Two views are provided:

* the **calibrated model** (:class:`RuntimeCostModel`) reproduces the
  paper-scale numbers per stage and policy for the Figure 16 bench;
* **measured timings** (:func:`measure_stage_timings`) time this
  repository's actual kernels, so the *ordering* claims (Earth+ lowest;
  cheap detector ≪ accurate detector; low-res change detection ≪ full-res)
  are validated on real code, not just constants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.change_detection import detect_changes
from repro.core.cloud import CloudDetector
from repro.core.reference import downsample_image
from repro.core.tiles import TileGrid
from repro.errors import ConfigError
from repro.imagery.bands import Band

#: Paper-scale stage costs, seconds per full Doves frame (Figure 16).
PAPER_STAGE_SECONDS = {
    "encode": 0.65,
    "cloud_cheap": 0.12,
    "cloud_accurate": 0.39,
    "change_lowres": 0.04,
    "change_fullres": 0.18,
}


@dataclass(frozen=True)
class StageTiming:
    """One pipeline stage's runtime.

    Attributes:
        stage: Stage name.
        seconds: Runtime in seconds.
    """

    stage: str
    seconds: float


class RuntimeCostModel:
    """Per-policy runtime composition from calibrated stage costs.

    Args:
        stage_seconds: Stage-cost table; defaults to the paper's numbers.
    """

    def __init__(self, stage_seconds: dict[str, float] | None = None) -> None:
        self.stage_seconds = dict(
            PAPER_STAGE_SECONDS if stage_seconds is None else stage_seconds
        )
        for stage, seconds in self.stage_seconds.items():
            if seconds < 0:
                raise ConfigError(f"stage {stage!r} has negative cost {seconds}")

    def policy_stages(self, policy: str) -> list[StageTiming]:
        """Stage breakdown for one policy's per-image processing.

        Args:
            policy: One of ``"earthplus"``, ``"kodan"``, ``"satroi"``.

        Returns:
            Ordered stage timings.

        Raises:
            ConfigError: For unknown policies.
        """
        table = self.stage_seconds
        if policy == "earthplus":
            stages = [
                ("encode", table["encode"]),
                ("cloud_detection", table["cloud_cheap"]),
                ("change_detection", table["change_lowres"]),
            ]
        elif policy == "kodan":
            stages = [
                ("encode", table["encode"]),
                ("cloud_detection", table["cloud_accurate"]),
            ]
        elif policy == "satroi":
            stages = [
                ("encode", table["encode"]),
                ("cloud_detection", table["cloud_cheap"]),
                ("change_detection", table["change_fullres"]),
            ]
        else:
            raise ConfigError(f"unknown policy {policy!r}")
        return [StageTiming(stage=s, seconds=sec) for s, sec in stages]

    def policy_total(self, policy: str) -> float:
        """Total per-image runtime for a policy."""
        return sum(t.seconds for t in self.policy_stages(policy))


def measure_stage_timings(
    pixels: dict[str, np.ndarray],
    bands: tuple[Band, ...],
    grid: TileGrid,
    cheap_detector: CloudDetector,
    accurate_detector: CloudDetector,
    reference: np.ndarray,
    downsample: int = 8,
    theta: float = 0.01,
    repeats: int = 3,
) -> dict[str, float]:
    """Time this repository's real kernels on one capture.

    Args:
        pixels: Capture band arrays.
        bands: Band definitions.
        grid: Tile grid of the capture.
        cheap_detector: On-board tile-level detector.
        accurate_detector: Ground pixel-level detector.
        reference: Full-resolution reference image for change detection.
        downsample: Low-res ratio for the Earth+ change-detection path.
        theta: Change threshold.
        repeats: Median-of-N repetitions.

    Returns:
        Stage name -> median seconds, with stages named as in
        :data:`PAPER_STAGE_SECONDS`.
    """
    band_name = bands[0].name
    image = pixels[band_name]

    def timed(fn) -> float:
        fn()  # warm caches/allocator out of the measurement
        samples = []
        for _ in range(max(3, repeats)):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        return float(np.median(samples))

    reference_lr = downsample_image(reference, downsample)

    timings = {
        "cloud_cheap": timed(
            lambda: cheap_detector.detect(pixels, bands, grid)
        ),
        "cloud_accurate": timed(
            lambda: accurate_detector.detect(pixels, bands, grid)
        ),
        "change_lowres": timed(
            lambda: detect_changes(
                reference_lr,
                downsample_image(image, downsample),
                grid,
                downsample,
                theta,
            )
        ),
        "change_fullres": timed(
            lambda: detect_changes(reference, image, grid, 1, theta)
        ),
    }
    return timings


def measure_encode_timings(
    image: np.ndarray,
    tile_size: int = 64,
    base_step: float = 1.0 / 256.0,
    repeats: int = 3,
    backends: "tuple[str, ...] | None" = None,
) -> dict[str, float]:
    """Time the real codec's encode stage under each entropy backend.

    The registered backends are bit-exact (differential-tested), so this
    measures pure implementation speed of the same computation: the
    per-bit reference coder, the vectorized numpy fast path, and the
    native compiled kernels.

    Each backend is measured with ``REPRO_CODEC_BACKEND`` pinned to it so
    the engine-independent kernel hooks (DWT lifting, rate model) run the
    matching implementation — the ``vectorized`` row is pure numpy even
    on a machine where the compiled kernels are available.

    Args:
        image: 2-D float image in [0, 1].
        tile_size: Codec tile edge.
        base_step: Quantizer base step (fine enough to occupy many planes).
        repeats: Median-of-N repetitions.
        backends: Engine names to measure; default: every registered
            engine that is available on this machine.

    Returns:
        ``{"encode_<backend>": s, "decode_<backend>": s}`` per backend.
    """
    import os

    from repro.codec import registry
    from repro.codec.jpeg2000 import CodecConfig, ImageCodec

    def timed(fn) -> float:
        fn()  # warm caches/allocator out of the measurement
        samples = []
        for _ in range(max(3, repeats)):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        return float(np.median(samples))

    if backends is None:
        backends = tuple(
            name for name in registry.names() if registry.get(name).available()
        )
    config = CodecConfig(tile_size=tile_size, base_step=base_step)
    timings: dict[str, float] = {}
    encoded = None
    saved = os.environ.get(registry.ENV_BACKEND)
    try:
        for backend in backends:
            os.environ[registry.ENV_BACKEND] = backend
            codec = ImageCodec(config, backend=backend)
            timings[f"encode_{backend}"] = timed(lambda: codec.encode(image))
            if encoded is None:
                encoded = codec.encode(image)
            timings[f"decode_{backend}"] = timed(lambda: codec.decode(encoded))
    finally:
        if saved is None:
            os.environ.pop(registry.ENV_BACKEND, None)
        else:
            os.environ[registry.ENV_BACKEND] = saved
    return timings
