"""Reference images: ground mosaic, on-board cache, and uplink deltas.

Three cooperating pieces implement §4.3's uplink-saving machinery:

* :class:`GroundMosaic` — the ground segment's best current estimate of a
  location's surface, per band: downloaded tiles overwrite their region,
  so the mosaic is fresh where things change and (correctly) old where they
  don't.  The freshest cloud-free reference the constellation can offer is
  read straight out of it.
* :class:`OnboardReferenceCache` — the satellite's copy of the (downsampled)
  reference per location/band, with its per-tile timestamps.
* :class:`ReferenceUpdate` — the wire format: either a full low-res image
  or (the default) just the low-res tiles that changed versus what the
  satellite already caches, serialized to real bytes so uplink accounting
  is honest.

Invariant (property-tested): applying a delta update to the cached reference
produces exactly the full new reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.tiles import TileGrid
from repro.codec.bitstream import BitReader, BitWriter
from repro.errors import ReferenceError_


def downsample_image(image: np.ndarray, ratio: int) -> np.ndarray:
    """Anti-aliased (block-mean) downsampling by an integer linear ratio.

    Edge blocks smaller than ``ratio`` are averaged over their true extent.

    Args:
        image: 2-D array.
        ratio: Linear downsampling factor (>= 1).

    Returns:
        Array of shape ``(ceil(H/ratio), ceil(W/ratio))``.
    """
    if ratio < 1:
        raise ReferenceError_(f"ratio must be >= 1, got {ratio}")
    if ratio == 1:
        return image.astype(np.float64).copy()
    height, width = image.shape
    out_h = (height + ratio - 1) // ratio
    out_w = (width + ratio - 1) // ratio
    pad_h = out_h * ratio - height
    pad_w = out_w * ratio - width
    padded = np.pad(image.astype(np.float64), ((0, pad_h), (0, pad_w)), mode="edge")
    blocks = padded.reshape(out_h, ratio, out_w, ratio)
    return blocks.mean(axis=(1, 3))


def downsample_many(stack: np.ndarray, ratio: int) -> np.ndarray:
    """Batched :func:`downsample_image` over a ``(N, H, W)`` stack.

    Bit-identical per slice: the blocked mean reduces the same elements in
    the same order per output cell whether or not a leading batch axis is
    present.

    Args:
        stack: ``(N, H, W)`` array.
        ratio: Linear downsampling factor (>= 1).

    Returns:
        ``(N, ceil(H/ratio), ceil(W/ratio))`` float64 array.
    """
    if ratio < 1:
        raise ReferenceError_(f"ratio must be >= 1, got {ratio}")
    if stack.ndim != 3:
        raise ReferenceError_(
            f"expected (N, H, W) stack, got shape {stack.shape}"
        )
    if ratio == 1:
        return stack.astype(np.float64).copy()
    n_images, height, width = stack.shape
    out_h = (height + ratio - 1) // ratio
    out_w = (width + ratio - 1) // ratio
    pad_h = out_h * ratio - height
    pad_w = out_w * ratio - width
    padded = np.pad(
        stack.astype(np.float64),
        ((0, 0), (0, pad_h), (0, pad_w)),
        mode="edge",
    )
    blocks = padded.reshape(n_images, out_h, ratio, out_w, ratio)
    return blocks.mean(axis=(2, 4))


def upsample_image(
    image_lr: np.ndarray, ratio: int, target_shape: tuple[int, int]
) -> np.ndarray:
    """Nearest-neighbour upsampling back to ``target_shape``."""
    if ratio < 1:
        raise ReferenceError_(f"ratio must be >= 1, got {ratio}")
    expanded = np.repeat(np.repeat(image_lr, ratio, axis=0), ratio, axis=1)
    height, width = target_shape
    if expanded.shape[0] < height or expanded.shape[1] < width:
        expanded = np.pad(
            expanded,
            (
                (0, max(0, height - expanded.shape[0])),
                (0, max(0, width - expanded.shape[1])),
            ),
            mode="edge",
        )
    return expanded[:height, :width]


def quantize_reference(image_lr: np.ndarray) -> np.ndarray:
    """Quantize a low-res reference to uint8 (its storage/wire format)."""
    return np.clip(np.rint(image_lr * 255.0), 0, 255).astype(np.uint8)


def dequantize_reference(stored: np.ndarray) -> np.ndarray:
    """Back to float [0, 1]."""
    return stored.astype(np.float64) / 255.0


@dataclass
class ReferenceUpdate:
    """One uplink message updating a satellite's cached reference.

    Attributes:
        location: Target location name.
        band: Target band name.
        t_days: Timestamp of the reference content.
        full: True when the message carries the complete low-res image
            (first upload, or delta updates disabled).
        lr_shape: Low-res image shape.
        tile_indices: For delta updates, the changed low-res tile indices.
        payload: The uint8 pixel payload (full image or changed tiles).
        lr_tile: Edge of the low-res update tile in low-res pixels.
        validity: Boolean low-res mask of pixels the ground has real
            content for; the satellite treats invalid reference pixels as
            "never seen — must download".  Shipped as a bitmap (1 bit per
            low-res pixel).
    """

    location: str
    band: str
    t_days: float
    full: bool
    lr_shape: tuple[int, int]
    tile_indices: list[tuple[int, int]]
    payload: np.ndarray
    lr_tile: int
    validity: np.ndarray | None = None

    def to_bytes(self) -> bytes:
        """Serialize for uplink byte accounting."""
        writer = BitWriter()
        loc_bytes = self.location.encode("utf-8")
        band_bytes = self.band.encode("utf-8")
        writer.write_uvarint(len(loc_bytes))
        writer.write_bytes(loc_bytes)
        writer.write_uvarint(len(band_bytes))
        writer.write_bytes(band_bytes)
        writer.write_uvarint(int(self.t_days * 1000))
        writer.write_uvarint(1 if self.full else 0)
        writer.write_uvarint(self.lr_shape[0])
        writer.write_uvarint(self.lr_shape[1])
        writer.write_uvarint(self.lr_tile)
        writer.write_uvarint(len(self.tile_indices))
        for ty, tx in self.tile_indices:
            writer.write_uvarint(ty)
            writer.write_uvarint(tx)
        if self.validity is None:
            writer.write_uvarint(0)
        else:
            writer.write_uvarint(1)
            for bit in self.validity.ravel():
                writer.write_bit(int(bit))
            writer.align()
        writer.write_bytes(self.payload.astype(np.uint8).tobytes())
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "ReferenceUpdate":
        """Parse an uplink message."""
        reader = BitReader(data)
        location = reader.read_bytes(reader.read_uvarint()).decode("utf-8")
        band = reader.read_bytes(reader.read_uvarint()).decode("utf-8")
        t_days = reader.read_uvarint() / 1000.0
        full = bool(reader.read_uvarint())
        lr_shape = (reader.read_uvarint(), reader.read_uvarint())
        lr_tile = reader.read_uvarint()
        n_tiles = reader.read_uvarint()
        tile_indices = [
            (reader.read_uvarint(), reader.read_uvarint()) for _ in range(n_tiles)
        ]
        validity = None
        if reader.read_uvarint():
            bits = np.zeros(lr_shape[0] * lr_shape[1], dtype=bool)
            for idx in range(bits.size):
                bits[idx] = bool(reader.read_bit())
            reader.align()
            validity = bits.reshape(lr_shape)
        payload = np.frombuffer(
            reader.read_bytes(reader.remaining_bytes()), dtype=np.uint8
        )
        return cls(
            location=location,
            band=band,
            t_days=t_days,
            full=full,
            lr_shape=lr_shape,
            tile_indices=tile_indices,
            payload=payload,
            lr_tile=lr_tile,
            validity=validity,
        )

    @property
    def n_bytes(self) -> int:
        """Serialized size (the uplink cost of this update)."""
        return len(self.to_bytes())


@dataclass
class _CachedReference:
    t_days: float
    stored: np.ndarray  # uint8, low resolution
    validity: np.ndarray  # bool, low resolution


class OnboardReferenceCache:
    """The satellite's cache of low-res references per (location, band).

    Args:
        lr_tile: Edge of the low-res delta tile (low-res pixels).  Chosen so
            one low-res tile maps onto an integer block of full-res tiles.
    """

    def __init__(self, lr_tile: int = 8) -> None:
        if lr_tile < 1:
            raise ReferenceError_(f"lr_tile must be >= 1, got {lr_tile}")
        self.lr_tile = lr_tile
        self._store: dict[tuple[str, str], _CachedReference] = {}

    def has(self, location: str, band: str) -> bool:
        """Whether a reference is cached for (location, band)."""
        return (location, band) in self._store

    def get(self, location: str, band: str) -> tuple[float, np.ndarray]:
        """The cached ``(t_days, float image)`` for (location, band).

        Raises:
            ReferenceError_: When nothing is cached.
        """
        try:
            cached = self._store[(location, band)]
        except KeyError:
            raise ReferenceError_(
                f"no cached reference for {location}/{band}"
            ) from None
        return cached.t_days, dequantize_reference(cached.stored)

    def get_validity(self, location: str, band: str) -> np.ndarray:
        """Low-res validity mask of the cached reference.

        Invalid pixels mean "the ground has never seen this area clearly";
        the encoder must treat their tiles as changed.
        """
        try:
            cached = self._store[(location, band)]
        except KeyError:
            raise ReferenceError_(
                f"no cached reference for {location}/{band}"
            ) from None
        return cached.validity

    def age_days(self, location: str, band: str, now_days: float) -> float:
        """Age of the cached reference at ``now_days``."""
        t_days, _ = self.get(location, band)
        return now_days - t_days

    def apply_update(self, update: ReferenceUpdate) -> None:
        """Apply an uplinked update (full or delta) to the cache.

        Raises:
            ReferenceError_: If a delta arrives for an uncached reference or
                with mismatched geometry.
        """
        key = (update.location, update.band)
        new_validity = (
            update.validity.copy()
            if update.validity is not None
            else np.ones(update.lr_shape, dtype=bool)
        )
        expected_full = update.lr_shape[0] * update.lr_shape[1]
        if update.full:
            if update.payload.size != expected_full:
                raise ReferenceError_(
                    f"full update payload has {update.payload.size} pixels, "
                    f"expected {expected_full} (truncated upload?)"
                )
            stored = update.payload.reshape(update.lr_shape).copy()
            self._store[key] = _CachedReference(
                update.t_days, stored, new_validity
            )
            return
        if key not in self._store:
            raise ReferenceError_(
                f"delta update for uncached reference {key}"
            )
        cached = self._store[key]
        if cached.stored.shape != update.lr_shape:
            raise ReferenceError_(
                f"delta shape {update.lr_shape} != cached {cached.stored.shape}"
            )
        stored = cached.stored.copy()
        tile = update.lr_tile
        cursor = 0
        for ty, tx in update.tile_indices:
            y0, x0 = ty * tile, tx * tile
            y1 = min(y0 + tile, update.lr_shape[0])
            x1 = min(x0 + tile, update.lr_shape[1])
            need = (y1 - y0) * (x1 - x0)
            block = update.payload[cursor : cursor + need]
            if block.size != need:
                raise ReferenceError_(
                    f"delta payload exhausted at tile ({ty},{tx}): "
                    f"have {block.size} pixels, need {need}"
                )
            stored[y0:y1, x0:x1] = block.reshape(y1 - y0, x1 - x0)
            cursor += need
        self._store[key] = _CachedReference(update.t_days, stored, new_validity)

    def storage_bytes(self) -> int:
        """Total cache footprint in bytes (uint8 pixels)."""
        return sum(c.stored.size for c in self._store.values())

    def build_update(
        self,
        location: str,
        band: str,
        t_days: float,
        new_reference_lr: np.ndarray,
        validity: np.ndarray | None = None,
        delta: bool = True,
        tolerance: int = 1,
    ) -> ReferenceUpdate | None:
        """Construct the cheapest valid update towards ``new_reference_lr``.

        Returns None when the cached reference (content and validity) is
        already identical — no upload needed.  With ``delta=False`` or an
        empty cache the update carries the full image.

        Args:
            location: Target location.
            band: Target band.
            t_days: Content timestamp.
            new_reference_lr: New low-res reference (float [0, 1]).
            validity: Low-res mask of pixels with real content.
            delta: Allow tile-delta encoding against the cache.
            tolerance: Low-res tiles whose pixels differ from the cache by
                at most this many uint8 LSBs are treated as unchanged.
                Codec noise flickers the last bit of re-downloaded content;
                propagating that flicker would make every delta a full
                upload.  One LSB (~0.004) sits far below the change
                threshold theta, so detection is unaffected.
        """
        stored_new = quantize_reference(new_reference_lr)
        new_validity = (
            validity.copy()
            if validity is not None
            else np.ones(stored_new.shape, dtype=bool)
        )

        def full_update() -> ReferenceUpdate:
            return ReferenceUpdate(
                location=location,
                band=band,
                t_days=t_days,
                full=True,
                lr_shape=stored_new.shape,
                tile_indices=[],
                payload=stored_new.ravel().copy(),
                lr_tile=self.lr_tile,
                validity=new_validity,
            )

        key = (location, band)
        if not delta or key not in self._store:
            return full_update()
        cached = self._store[key]
        if cached.stored.shape != stored_new.shape:
            return full_update()
        tile = self.lr_tile
        lr_h, lr_w = stored_new.shape
        indices: list[tuple[int, int]] = []
        chunks: list[np.ndarray] = []
        for ty in range((lr_h + tile - 1) // tile):
            for tx in range((lr_w + tile - 1) // tile):
                y0, x0 = ty * tile, tx * tile
                y1, x1 = min(y0 + tile, lr_h), min(x0 + tile, lr_w)
                old_block = cached.stored[y0:y1, x0:x1].astype(np.int16)
                new_block = stored_new[y0:y1, x0:x1].astype(np.int16)
                if np.abs(new_block - old_block).max() > tolerance:
                    indices.append((ty, tx))
                    chunks.append(stored_new[y0:y1, x0:x1].ravel())
        if not indices and np.array_equal(cached.validity, new_validity):
            return None
        return ReferenceUpdate(
            location=location,
            band=band,
            t_days=t_days,
            full=False,
            lr_shape=stored_new.shape,
            tile_indices=indices,
            payload=(
                np.concatenate(chunks)
                if chunks
                else np.empty(0, dtype=np.uint8)
            ),
            lr_tile=tile,
            validity=new_validity,
        )


class GroundMosaic:
    """Ground-side best-estimate surface per (location, band).

    Downloaded tiles overwrite their region with a timestamp; the mosaic
    doubles as the reference-selection source (its downsampled form is what
    gets uplinked) and as the "what the ground believes" image for PSNR
    scoring.
    """

    def __init__(self, image_shape: tuple[int, int], tile_size: int) -> None:
        self.grid = TileGrid(image_shape, tile_size)
        self._images: dict[tuple[str, str], np.ndarray] = {}
        self._tile_times: dict[tuple[str, str], np.ndarray] = {}
        self._filled: dict[tuple[str, str], np.ndarray] = {}

    def has(self, location: str, band: str) -> bool:
        """Whether any content exists for (location, band)."""
        return (location, band) in self._images

    def image(self, location: str, band: str) -> np.ndarray:
        """Current mosaic image (float [0, 1]).

        Raises:
            ReferenceError_: When no content has been ingested yet.
        """
        try:
            return self._images[(location, band)]
        except KeyError:
            raise ReferenceError_(
                f"no mosaic content for {location}/{band}"
            ) from None

    def tile_ages(self, location: str, band: str, now_days: float) -> np.ndarray:
        """Per-tile age (days) of the mosaic content."""
        times = self._tile_times.get((location, band))
        if times is None:
            raise ReferenceError_(f"no mosaic content for {location}/{band}")
        return now_days - times

    def ingest_tiles(
        self,
        location: str,
        band: str,
        t_days: float,
        image: np.ndarray,
        tile_mask: np.ndarray,
        pixel_valid: np.ndarray | None = None,
    ) -> None:
        """Overwrite the masked tiles with content from ``image``.

        Args:
            location: Location name.
            band: Band name.
            t_days: Content timestamp.
            image: Full-resolution source (typically the decoded download).
            tile_mask: Boolean tile grid of tiles to take.
            pixel_valid: Optional pixel mask; only True pixels are written
                (cloudy pixels keep the older, cloud-free mosaic content —
                this is what keeps references cloud-free).
        """
        key = (location, band)
        if key not in self._images:
            self._images[key] = np.zeros(self.grid.image_shape, dtype=np.float64)
            self._tile_times[key] = np.full(self.grid.grid_shape, -np.inf)
            self._filled[key] = np.zeros(self.grid.image_shape, dtype=bool)
        target = self._images[key]
        times = self._tile_times[key]
        filled = self._filled[key]
        for ty, tx in zip(*np.nonzero(tile_mask)):
            y0, y1, x0, x1 = self.grid.tile_bounds(int(ty), int(tx))
            if pixel_valid is None:
                target[y0:y1, x0:x1] = image[y0:y1, x0:x1]
                filled[y0:y1, x0:x1] = True
                times[ty, tx] = t_days
                continue
            valid_block = pixel_valid[y0:y1, x0:x1]
            if not valid_block.any():
                continue
            block = target[y0:y1, x0:x1]
            block[valid_block] = image[y0:y1, x0:x1][valid_block]
            filled[y0:y1, x0:x1] |= valid_block
            times[ty, tx] = t_days

    def filled_mask(self, location: str, band: str) -> np.ndarray:
        """Pixels that have ever been filled by a download."""
        mask = self._filled.get((location, band))
        if mask is None:
            raise ReferenceError_(f"no mosaic content for {location}/{band}")
        return mask

    def reference_lr(
        self, location: str, band: str, downsample: int
    ) -> np.ndarray:
        """The mosaic downsampled to reference resolution.

        Each low-res pixel averages only *filled* mosaic pixels (never-seen
        pixels carry no information); completely-unfilled blocks are zero
        and are flagged by :meth:`reference_validity_lr`.
        """
        image = self.image(location, band)
        filled = self.filled_mask(location, band)
        weighted = downsample_image(np.where(filled, image, 0.0), downsample)
        weight = downsample_image(filled.astype(np.float64), downsample)
        out = np.zeros_like(weighted)
        nonzero = weight > 1e-9
        out[nonzero] = weighted[nonzero] / weight[nonzero]
        return out

    def reference_validity_lr(
        self, location: str, band: str, downsample: int
    ) -> np.ndarray:
        """Low-res validity: True where the block has any filled content."""
        filled = self.filled_mask(location, band)
        return downsample_image(filled.astype(np.float64), downsample) > 1e-9
