"""Earth+ core: constellation-wide reference-based on-board compression.

This package is the paper's contribution itself, layered over the substrates:

* :mod:`repro.core.config` — Doves-class satellite specification (Table 1)
  and Earth+ tunables (threshold theta, bit budget gamma, reference
  downsampling, guaranteed-download period);
* :mod:`repro.core.tiles` — the 64x64 geographic tile grid everything is
  expressed in;
* :mod:`repro.core.cloud` — the cheap on-board decision-tree cloud detector
  and the accurate ground-side detector (both genuinely trained);
* :mod:`repro.core.change_detection` — illumination alignment (linear
  regression) + low-resolution per-tile change detection (§4.3, §5);
* :mod:`repro.core.reference` — ground reference store, on-board reference
  cache, downsampled + delta-encoded reference updates over the uplink;
* :mod:`repro.core.encoder` — the on-board pipeline (cloud removal, image
  dropping, alignment, detection, ROI encoding, guaranteed download);
* :mod:`repro.core.ground_segment` — the ground-station side (accurate cloud
  re-detection, mosaic maintenance, reference selection and upload planning);
* :mod:`repro.core.phases` — the event-phase simulation kernel (uplink,
  capture, ingest phases over explicit per-satellite state);
* :mod:`repro.core.accounting` — streaming metrics accumulation into the
  :class:`RunResult` every experiment consumes;
* :mod:`repro.core.system` — the thin end-to-end constellation driver that
  produces every number in EXPERIMENTS.md;
* :mod:`repro.core.compute` — the runtime cost model behind Figure 16.
"""

from repro.core.config import DovesSpec, EarthPlusConfig
from repro.core.tiles import TileGrid
from repro.core.change_detection import (
    align_illumination,
    changed_tile_mask,
    detect_changes,
    ChangeDetectionResult,
)
from repro.core.cloud import (
    CloudDetector,
    train_onboard_detector,
    train_ground_detector,
    DetectorQuality,
)
from repro.core.reference import (
    OnboardReferenceCache,
    ReferenceUpdate,
    GroundMosaic,
    downsample_image,
    upsample_image,
)
from repro.core.encoder import (
    EarthPlusEncoder,
    BandEncodeResult,
    CaptureEncodeResult,
    RoiRateController,
)
from repro.core.ground_segment import GroundSegment, UplinkStats
from repro.core.accounting import (
    MetricCollector,
    MetricsAccumulator,
    RunResult,
    CaptureRecord,
)
from repro.core.phases import (
    CapturePhase,
    CompressionPolicy,
    IngestPhase,
    SatelliteState,
    UplinkPhase,
    UplinkReceiver,
    VisitEvent,
)
from repro.core.system import ConstellationSimulator, EarthPlusPolicy
from repro.core.compute import RuntimeCostModel, StageTiming

__all__ = [
    "DovesSpec",
    "EarthPlusConfig",
    "TileGrid",
    "align_illumination",
    "changed_tile_mask",
    "detect_changes",
    "ChangeDetectionResult",
    "CloudDetector",
    "train_onboard_detector",
    "train_ground_detector",
    "DetectorQuality",
    "OnboardReferenceCache",
    "ReferenceUpdate",
    "GroundMosaic",
    "downsample_image",
    "upsample_image",
    "EarthPlusEncoder",
    "BandEncodeResult",
    "CaptureEncodeResult",
    "RoiRateController",
    "GroundSegment",
    "UplinkStats",
    "MetricCollector",
    "MetricsAccumulator",
    "CapturePhase",
    "CompressionPolicy",
    "IngestPhase",
    "SatelliteState",
    "UplinkPhase",
    "UplinkReceiver",
    "VisitEvent",
    "ConstellationSimulator",
    "EarthPlusPolicy",
    "RunResult",
    "CaptureRecord",
    "RuntimeCostModel",
    "StageTiming",
]
