"""Illumination alignment and low-resolution change detection (§4.3, §5).

The on-board detector answers "which tiles changed?" against a (downsampled)
reference image in three steps:

1. **Illumination alignment** — ordinary least squares for the ``(gain,
   offset)`` mapping reference to capture over valid (non-cloud) pixels;
   the paper justifies linearity via the radiometric-normalization
   literature [72], and our imagery substrate is linear by construction.
2. **Differencing** — mean absolute difference per tile, computed at the
   reference's low resolution: cheap, and biased only towards *false
   negatives* (changes averaged away), never false positives, which is why
   the paper pairs aggressive downsampling with a low threshold.
3. **Thresholding** — a tile is changed when its mean difference exceeds
   ``theta`` (paper default 0.01 on [0, 1]-normalized pixels).

``calibrate_threshold`` reproduces the paper's protocol of profiling theta
on the previous year's data at one location and reusing it everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tiles import TileGrid
from repro.errors import PipelineError


@dataclass(frozen=True)
class ChangeDetectionResult:
    """Outcome of change detection for one band.

    Attributes:
        changed_tiles: Boolean tile grid (True = download this tile).
        gain: Fitted illumination gain (reference -> capture).
        offset: Fitted illumination offset.
        tile_scores: Per-tile mean absolute difference after alignment.
    """

    changed_tiles: np.ndarray
    gain: float
    offset: float
    tile_scores: np.ndarray

    @property
    def changed_fraction(self) -> float:
        """Fraction of tiles flagged as changed."""
        return float(self.changed_tiles.mean())


def align_illumination(
    reference: np.ndarray,
    capture: np.ndarray,
    valid: np.ndarray | None = None,
) -> tuple[float, float]:
    """Least-squares fit of ``capture ~= gain * reference + offset``.

    Args:
        reference: Reference image (any resolution).
        capture: Capture at the same resolution.
        valid: Optional boolean mask of pixels to fit on (non-cloud).

    Returns:
        ``(gain, offset)``.  Falls back to identity when the fit is
        degenerate (constant reference or too few valid pixels).
    """
    if reference.shape != capture.shape:
        raise PipelineError(
            f"shape mismatch: reference {reference.shape} vs capture {capture.shape}"
        )
    ref = reference.astype(np.float64).ravel()
    cap = capture.astype(np.float64).ravel()
    if valid is not None:
        if valid.shape != reference.shape:
            raise PipelineError(
                f"valid-mask shape {valid.shape} != image shape {reference.shape}"
            )
        mask = valid.ravel()
        ref = ref[mask]
        cap = cap[mask]
    if ref.size < 8:
        return 1.0, 0.0

    def fit(r: np.ndarray, c: np.ndarray) -> tuple[float, float]:
        r_mean = float(r.mean())
        c_mean = float(c.mean())
        var = float(np.mean((r - r_mean) ** 2))
        if var < 1e-12:
            return 1.0, 0.0
        cov = float(np.mean((r - r_mean) * (c - c_mean)))
        g = cov / var
        return g, c_mean - g * r_mean

    gain, offset = fit(ref, cap)
    # One robust re-fit: content changes and undetected cloud are outliers
    # to the illumination relation; dropping large residuals keeps the fit
    # anchored on the (majority) unchanged pixels.
    residual = np.abs(cap - (gain * ref + offset))
    sigma = float(residual.std())
    if sigma > 1e-9:
        keep = residual <= 2.0 * sigma
        if int(keep.sum()) >= 8 and keep.mean() > 0.3:
            gain, offset = fit(ref[keep], cap[keep])
    # Physical sanity: real illumination gains sit near 1 (sun elevation and
    # atmosphere modulate, they do not invert or explode).  A fit outside
    # this range means the reference does not explain the capture (massive
    # change, unfilled reference, undetected storm); fall back to identity
    # so downstream normalization can never corrupt content.
    if not 0.2 <= gain <= 5.0:
        return 1.0, 0.0
    return gain, offset


def tile_difference_scores(
    aligned_reference_lr: np.ndarray,
    capture_lr: np.ndarray,
    grid: TileGrid,
    downsample: int,
    valid_lr: np.ndarray | None = None,
) -> np.ndarray:
    """Per-tile mean absolute difference, computed at low resolution.

    The low-res difference image is expanded back to full resolution
    (nearest-neighbour) and averaged per tile, which handles every ratio of
    tile size to downsampling factor — including references so coarse that
    one low-res pixel spans multiple tiles (the paper's 2601x point).

    Args:
        aligned_reference_lr: Low-res reference after illumination alignment.
        capture_lr: Low-res capture.
        grid: Full-resolution tile grid.
        downsample: Linear downsampling ratio between full and low res.
        valid_lr: Optional low-res validity mask; invalid pixels contribute
            zero difference (cloud handled upstream).

    Returns:
        float64 array of shape ``grid.grid_shape``.
    """
    if aligned_reference_lr.shape != capture_lr.shape:
        raise PipelineError(
            "low-res shape mismatch: "
            f"{aligned_reference_lr.shape} vs {capture_lr.shape}"
        )
    diff = np.abs(
        capture_lr.astype(np.float64) - aligned_reference_lr.astype(np.float64)
    )
    if valid_lr is not None:
        diff = np.where(valid_lr, diff, 0.0)
    height, width = grid.image_shape
    expanded = np.repeat(np.repeat(diff, downsample, axis=0), downsample, axis=1)
    if expanded.shape[0] < height or expanded.shape[1] < width:
        expanded = np.pad(
            expanded,
            (
                (0, max(0, height - expanded.shape[0])),
                (0, max(0, width - expanded.shape[1])),
            ),
            mode="edge",
        )
    expanded = expanded[:height, :width]
    return grid.reduce_mean(expanded)


def changed_tile_mask(tile_scores: np.ndarray, theta: float) -> np.ndarray:
    """Threshold tile scores into the changed-tile mask."""
    if theta < 0:
        raise PipelineError(f"theta must be >= 0, got {theta}")
    return tile_scores > theta


def detect_changes(
    reference_lr: np.ndarray,
    capture_lr: np.ndarray,
    grid: TileGrid,
    downsample: int,
    theta: float,
    valid_lr: np.ndarray | None = None,
) -> ChangeDetectionResult:
    """Full §4.3 pipeline: align, difference, threshold.

    Args:
        reference_lr: Low-res reference image.
        capture_lr: Low-res capture (same shape).
        grid: Full-resolution tile grid.
        downsample: Linear ratio between full and low resolution.
        theta: Change threshold.
        valid_lr: Optional low-res non-cloud mask used for both the
            illumination fit and the differencing.

    Returns:
        A :class:`ChangeDetectionResult`.
    """
    gain, offset = align_illumination(reference_lr, capture_lr, valid_lr)
    aligned = reference_lr.astype(np.float64) * gain + offset
    scores = tile_difference_scores(
        aligned, capture_lr, grid, downsample, valid_lr
    )
    return ChangeDetectionResult(
        changed_tiles=changed_tile_mask(scores, theta),
        gain=gain,
        offset=offset,
        tile_scores=scores,
    )


def detect_changes_many(
    reference_lr_stack: np.ndarray,
    capture_lr_stack: np.ndarray,
    grid: TileGrid,
    downsample: int,
    theta: float,
    valid_lr_stack: np.ndarray | None = None,
) -> list[ChangeDetectionResult]:
    """Batched :func:`detect_changes` over stacked bands.

    The illumination fits stay per band (they are scalar reductions over
    that band's pixels), while differencing, nearest-neighbour expansion,
    and the per-tile mean reduction run once on the ``(band, h, w)`` stack.
    Every stage performs the same elementwise arithmetic per band as the
    single-band path, so each returned result is bit-identical to calling
    :func:`detect_changes` on that band alone.

    Args:
        reference_lr_stack: ``(B, h, w)`` low-res references.
        capture_lr_stack: ``(B, h, w)`` low-res captures.
        grid: Full-resolution tile grid.
        downsample: Linear ratio between full and low resolution.
        theta: Change threshold.
        valid_lr_stack: Optional ``(B, h, w)`` boolean validity masks.

    Returns:
        One :class:`ChangeDetectionResult` per band, in order.
    """
    if reference_lr_stack.shape != capture_lr_stack.shape:
        raise PipelineError(
            "low-res stack shape mismatch: "
            f"{reference_lr_stack.shape} vs {capture_lr_stack.shape}"
        )
    n_bands = reference_lr_stack.shape[0]
    fits = [
        align_illumination(
            reference_lr_stack[b],
            capture_lr_stack[b],
            valid_lr_stack[b] if valid_lr_stack is not None else None,
        )
        for b in range(n_bands)
    ]
    gains = np.array([g for g, _ in fits], dtype=np.float64)
    offsets = np.array([o for _, o in fits], dtype=np.float64)
    aligned = (
        reference_lr_stack.astype(np.float64) * gains[:, None, None]
        + offsets[:, None, None]
    )
    diff = np.abs(capture_lr_stack.astype(np.float64) - aligned)
    if valid_lr_stack is not None:
        diff = np.where(valid_lr_stack, diff, 0.0)
    height, width = grid.image_shape
    expanded = np.repeat(
        np.repeat(diff, downsample, axis=1), downsample, axis=2
    )
    if expanded.shape[1] < height or expanded.shape[2] < width:
        expanded = np.pad(
            expanded,
            (
                (0, 0),
                (0, max(0, height - expanded.shape[1])),
                (0, max(0, width - expanded.shape[2])),
            ),
            mode="edge",
        )
    expanded = expanded[:, :height, :width]
    scores = grid.reduce_mean_many(expanded)
    return [
        ChangeDetectionResult(
            changed_tiles=changed_tile_mask(scores[b], theta),
            gain=fits[b][0],
            offset=fits[b][1],
            tile_scores=scores[b],
        )
        for b in range(n_bands)
    ]


def calibrate_threshold(
    score_history: list[np.ndarray],
    truth_history: list[np.ndarray],
    target_false_positive_rate: float = 0.002,
) -> float:
    """Choose theta from profiling data (the paper's year-1 calibration).

    Picks the smallest threshold whose false-positive rate on the profiling
    set stays below the target — the paper's "low threshold that detects
    more changed tiles without misclassifying unchanged tiles" (§4.3).

    Args:
        score_history: Per-capture tile-score grids from the profiling year.
        truth_history: Matching oracle changed-tile grids.
        target_false_positive_rate: Acceptable fraction of unchanged tiles
            flagged changed.

    Returns:
        The calibrated theta.

    Raises:
        PipelineError: On empty or mismatched profiling data.
    """
    if not score_history or len(score_history) != len(truth_history):
        raise PipelineError("profiling data must be non-empty and aligned")
    unchanged_scores: list[np.ndarray] = []
    for scores, truth in zip(score_history, truth_history):
        if scores.shape != truth.shape:
            raise PipelineError(
                f"score shape {scores.shape} != truth shape {truth.shape}"
            )
        unchanged_scores.append(scores[~truth])
    pool = np.concatenate(unchanged_scores)
    if pool.size == 0:
        return 0.0
    return float(np.quantile(pool, 1.0 - target_false_positive_rate))
