"""The Earth+ on-board pipeline (§5): what runs on the satellite.

Per capture, in order:

1. **Cloud removal** — the cheap decision-tree detector flags cloudy tiles;
   their pixels are zeroed and they are never downloaded.
2. **Image dropping** — captures over 50 % detected cloud are discarded
   outright.
3. **Illumination alignment** — linear fit of the cached low-res reference
   to the (low-res) capture over non-cloudy pixels.
4. **Change detection** — per-tile mean absolute difference at reference
   resolution, thresholded at theta.
5. **Region-of-interest encoding** — changed, non-cloudy tiles are encoded
   at ``gamma`` bits per pixel (whole-image bpp = gamma x changed fraction,
   the paper's Kakadu configuration).
6. **Guaranteed download** — once per configured period, a sufficiently
   clear capture is downloaded in its entirety so undetected changes are
   bounded in age.

When no reference is cached (cold start, or uplink outage since launch) the
pipeline degrades to Kodan-like behaviour: download everything non-cloudy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import perf
from repro.codec.jpeg2000 import CodecConfig
from repro.codec.ratemodel import QualityLayer, RateModel
from repro.core.change_detection import (
    ChangeDetectionResult,
    detect_changes,
    detect_changes_many,
)
from repro.core.cloud import CloudDetector
from repro.core.config import EarthPlusConfig
from repro.core.reference import (
    OnboardReferenceCache,
    downsample_image,
    downsample_many,
)
from repro.core.tiles import TileGrid
from repro.errors import PipelineError
from repro.imagery.bands import Band
from repro.imagery.sensor import Capture

#: Bytes for the per-band illumination alignment parameters shipped with
#: each download (two float32 values).
_ALIGNMENT_BYTES = 8

#: Public alias (baselines ship the same two float32 values per band).
ALIGNMENT_BYTES = _ALIGNMENT_BYTES


def build_rate_model(
    config: EarthPlusConfig, codec_config: CodecConfig | None = None
):
    """The configured rate backend: fast model or real arithmetic codec.

    ``codec_backend`` selects ``"model"`` (calibrated rate model) or one
    of the registered entropy-coding engines (``"reference"``,
    ``"vectorized"``, ``"compiled"``, or the ``"real"`` best-available
    alias) — engine names resolve through ``repro.codec.registry`` with
    its one precedence chain, so ``$REPRO_CODEC_BACKEND`` applies when
    the config leaves the engine unpinned.
    """
    resolved = (
        codec_config
        if codec_config is not None
        else CodecConfig(tile_size=config.tile_size)
    )
    if config.codec_backend != "model":
        from repro.codec import registry
        from repro.codec.adapter import RealCodecAdapter

        return RealCodecAdapter(
            resolved,
            n_layers=config.n_quality_layers,
            backend=registry.resolve_name(
                config_backend=config.codec_backend
            ),
            parallel_tiles=config.codec_parallel_tiles,
        )
    return RateModel(resolved)


class RoiRateController:
    """Warm-started rate-targeted ROI encoding.

    Shared by the Earth+ encoder and every baseline so all policies hit
    identical operating points: per (location, band) the previous
    quantizer step is tried first and accepted when the coded size lands
    within 10 % under the target, otherwise a full step search runs.

    Args:
        config: Shared tunables (codec backend, tile size, quality layers).
        codec_config: Optional codec geometry override.
    """

    def __init__(
        self,
        config: EarthPlusConfig,
        codec_config: CodecConfig | None = None,
    ) -> None:
        self.rate_model = build_rate_model(config, codec_config)
        self.n_layers = config.n_quality_layers
        self._last_step: dict[tuple[str, str], float] = {}

    def close(self) -> None:
        """Release backend resources (the real codec's tile-worker pool).

        Idempotent; a no-op for the rate model.  Simulation owners call
        this when a run finishes so parallel-tile workers never outlive
        the run that spawned them.
        """
        close = getattr(self.rate_model, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "RoiRateController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def encode_roi(
        self,
        key: tuple[str, str],
        image: np.ndarray,
        roi: np.ndarray,
        target_bytes: int,
    ):
        """Encode ``roi`` of ``image`` at close to ``target_bytes``.

        On the fast path, backends exposing ``prepare()`` (the rate
        model) have their ROI tiles forward-transformed once and shared
        between the warm-step attempt and the fallback bisection search —
        the transform does not depend on the quantizer step.
        """
        warm = self._last_step.get(key)
        decomps = None
        prepare = getattr(self.rate_model, "prepare", None)
        if perf.simulation_fastpath() and prepare is not None:
            decomps = prepare(image, roi)
        result = self._encode_roi_inner(
            image, roi, target_bytes, warm, decomps, key
        )
        if (
            self.n_layers > 1
            and result.layers is None
            and result.layers_factory is None
        ):
            # Deferred: each view is an extra encode, and the views are
            # only read when the downlink budget actually binds.
            result.layers_factory = (
                lambda: self._model_layers(image, roi, result, decomps)
            )
        return result

    def _encode_roi_inner(
        self, image, roi, target_bytes, warm, decomps, key
    ):
        if warm is not None:
            if decomps is not None:
                # The byte estimate alone decides warm acceptance and is
                # bit-identical to encode().coded_bytes, so the (rejected)
                # warm attempt skips reconstruction entirely — and the
                # accepted one reuses the estimate's payload statistics.
                coded, payload_bits, segments = (
                    self.rate_model.estimate_with_stats(decomps, warm)
                )
                if 0.9 * target_bytes <= coded <= target_bytes:
                    return self.rate_model.encode(
                        image, warm, roi, decompositions=decomps,
                        payload_hint=(warm, payload_bits, segments),
                    )
            else:
                result = self.rate_model.encode(image, warm, roi)
                if 0.9 * target_bytes <= result.coded_bytes <= target_bytes:
                    return result
        if decomps is not None:
            result = self.rate_model.find_step_for_bytes(
                image, target_bytes, roi, tolerance=0.08, max_iterations=14,
                decompositions=decomps,
            )
        else:
            result = self.rate_model.find_step_for_bytes(
                image, target_bytes, roi, tolerance=0.08, max_iterations=14
            )
        self._last_step[key] = result.base_step
        return result

    def _model_layers(self, image, roi, result, decomps):
        """Quality-layer views for the fast rate model.

        Layers split the embedded bitstream at bit-plane boundaries, and
        truncating one trailing bit-plane is exactly a doubling of the
        effective quantizer step — so the model's view of "keep ``k`` of
        ``L`` layers" is its own encode at ``base_step * 2**(L - k)``.
        The real codec backends produce their views from the genuine
        layered bitstream instead (see
        :meth:`~repro.codec.adapter.RealCodecAdapter._layer_views`).
        """
        views = []
        for kept in range(1, self.n_layers):
            step = result.base_step * float(2 ** (self.n_layers - kept))
            if decomps is not None:
                coarse = self.rate_model.encode(
                    image, step, roi, decompositions=decomps
                )
            else:
                coarse = self.rate_model.encode(image, step, roi)
            views.append(
                QualityLayer(
                    coded_bytes=coarse.coded_bytes,
                    psnr_roi=coarse.psnr_roi,
                    reconstruction=coarse.reconstruction,
                )
            )
        views.append(
            QualityLayer(
                coded_bytes=result.coded_bytes,
                psnr_roi=result.psnr_roi,
                reconstruction=result.reconstruction,
            )
        )
        return tuple(views)


@dataclass
class BandEncodeResult:
    """Per-band outcome of processing one capture on board.

    Attributes:
        band: Band name.
        downloaded_tiles: Boolean tile grid of downloaded tiles.
        cloudy_tiles: Boolean tile grid of tiles removed as cloud.
        changed_fraction: Fraction of tiles the detector flagged changed.
        bytes_downlinked: Coded bytes for this band (0 if nothing downloaded).
        psnr_downloaded: PSNR of the coded reconstruction over downloaded
            tiles (inf when nothing was downloaded).
        reconstruction: Full-frame reconstruction; valid on downloaded tiles.
        gain: Illumination gain (reference -> capture); 1.0 without a
            reference.
        offset: Illumination offset.
        had_reference: Whether a cached reference drove change detection.
        detection: The raw change-detection result (None without reference).
        layers: Quality-layer prefix views of the coded payload, finest
            last (None when ``n_quality_layers == 1``, nothing was coded,
            or the views have not been materialized yet — see
            :meth:`materialized_layers`).  The downlink phase sheds
            trailing views under contact-capacity pressure.
        layers_factory: Deferred view construction (building views costs
            extra codec work per band, so it only happens when the
            downlink budget actually binds).
        layers_shed: Trailing quality layers shed at downlink time; when
            positive, ``bytes_downlinked``/``psnr_downloaded``/
            ``reconstruction`` already reflect the truncated stream.
    """

    band: str
    downloaded_tiles: np.ndarray
    cloudy_tiles: np.ndarray
    changed_fraction: float
    bytes_downlinked: int
    psnr_downloaded: float
    reconstruction: np.ndarray
    gain: float
    offset: float
    had_reference: bool
    detection: ChangeDetectionResult | None = None
    cloudy_pixels: np.ndarray | None = None
    layers: tuple[QualityLayer, ...] | None = None
    layers_factory: "Callable[[], tuple[QualityLayer, ...]] | None" = field(
        default=None, repr=False, compare=False
    )
    layers_shed: int = 0

    def materialized_layers(self) -> tuple[QualityLayer, ...] | None:
        """The layer views, building (and caching) them on first demand."""
        if self.layers is None and self.layers_factory is not None:
            self.layers = self.layers_factory()
        return self.layers

    @property
    def downloaded_fraction(self) -> float:
        """Fraction of tiles downloaded (Figure 12/13's x-axis)."""
        return float(self.downloaded_tiles.mean())


@dataclass
class CaptureEncodeResult:
    """Whole-capture outcome of the on-board pipeline.

    Attributes:
        location: Location name.
        satellite_id: Observing satellite.
        t_days: Capture time.
        dropped: True when the capture was discarded for cloud (> 50 %).
        guaranteed: True when this was a guaranteed full download.
        cloud_coverage_detected: On-board detected cloud fraction.
        bands: Per-band results (empty when dropped).
        onboard_encoded_bytes: Bytes of encoded capture data held on board.
    """

    location: str
    satellite_id: int
    t_days: float
    dropped: bool
    guaranteed: bool
    cloud_coverage_detected: float
    bands: list[BandEncodeResult] = field(default_factory=list)
    onboard_encoded_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        """Total downlink bytes for this capture."""
        return sum(b.bytes_downlinked for b in self.bands)

    @property
    def layers_shed(self) -> int:
        """Trailing quality layers shed across all bands at downlink."""
        return sum(b.layers_shed for b in self.bands)


class EarthPlusEncoder:
    """The on-board Earth+ encoder for one satellite.

    Args:
        config: Earth+ tunables.
        bands: Bands the satellite captures.
        image_shape: Capture pixel shape.
        cloud_detector: The cheap on-board detector.
        cache: This satellite's reference cache (uplinked by the ground).
        codec_config: Codec geometry (tile size is taken from ``config``).
    """

    def __init__(
        self,
        config: EarthPlusConfig,
        bands: tuple[Band, ...],
        image_shape: tuple[int, int],
        cloud_detector: CloudDetector,
        cache: OnboardReferenceCache,
        codec_config: CodecConfig | None = None,
    ) -> None:
        self.config = config
        self.bands = bands
        self.image_shape = image_shape
        self.cloud_detector = cloud_detector
        self.cache = cache
        self.grid = TileGrid(image_shape, config.tile_size)
        # Warm-started per-(location, band) rate search shared with the
        # baselines, to speed the bpp-target search across a timeline.
        self.rate = RoiRateController(config, codec_config)

    def close(self) -> None:
        """Release the rate controller's codec resources (idempotent)."""
        self.rate.close()

    # ------------------------------------------------------------------
    def process_capture(
        self,
        capture: Capture,
        guaranteed_due: bool = False,
    ) -> CaptureEncodeResult:
        """Run the full §5 pipeline over one capture.

        Args:
            capture: The observation to compress.
            guaranteed_due: Whether the guaranteed-download timer has
                expired for this location (the simulator tracks timers).

        Returns:
            The per-capture result with real byte accounting.
        """
        if capture.shape != self.image_shape:
            raise PipelineError(
                f"capture shape {capture.shape} != encoder shape {self.image_shape}"
            )
        cloud_pixels = self.cloud_detector.detect(
            capture.pixels, capture.bands, self.grid
        )
        coverage = float(cloud_pixels.mean())
        if coverage > self.config.drop_cloud_fraction:
            return CaptureEncodeResult(
                location=capture.location,
                satellite_id=capture.satellite_id,
                t_days=capture.t_days,
                dropped=True,
                guaranteed=False,
                cloud_coverage_detected=coverage,
            )
        # A tile with meaningful detected cloud is removed rather than
        # downloaded: its cloudy pixels carry no ground content, and its
        # clear remainder will be captured on a later, clearer pass.
        cloudy_tiles = self.grid.reduce_fraction(cloud_pixels) > 0.3
        # Guaranteed downloads additionally require a reasonably clear sky,
        # otherwise they would ship mostly zeros.
        guaranteed = guaranteed_due and coverage <= 0.05
        if perf.simulation_fastpath():
            band_results = self._process_bands_batched(
                capture, cloud_pixels, cloudy_tiles, guaranteed
            )
        else:
            band_results = [
                self._process_band(
                    capture, band, cloud_pixels, cloudy_tiles, guaranteed
                )
                for band in self.bands
            ]
        onboard_bytes = sum(b.bytes_downlinked for b in band_results)
        return CaptureEncodeResult(
            location=capture.location,
            satellite_id=capture.satellite_id,
            t_days=capture.t_days,
            dropped=False,
            guaranteed=guaranteed,
            cloud_coverage_detected=coverage,
            bands=band_results,
            onboard_encoded_bytes=onboard_bytes,
        )

    # ------------------------------------------------------------------
    def _process_bands_batched(
        self,
        capture: Capture,
        cloud_pixels: np.ndarray,
        cloudy_tiles: np.ndarray,
        guaranteed: bool,
    ) -> list[BandEncodeResult]:
        """All bands of a capture through the stacked fast path.

        Cloud removal and reference-resolution downsampling run once on a
        ``(band, h, w)`` stack, the shared non-cloud validity mask is
        computed once instead of per band, and change detection for every
        reference-carrying band goes through one
        :func:`~repro.core.change_detection.detect_changes_many` call.
        Each band's result is bit-identical to :meth:`_process_band` (the
        per-band reference path, kept as the differential-test oracle).
        """
        ratio = self.config.reference_downsample
        images = np.stack(
            [capture.pixels[band.name] for band in self.bands]
        )
        cleaned = np.where(cloud_pixels[None, :, :], 0.0, images)
        n_bands = len(self.bands)
        had_reference = [
            self.cache.has(capture.location, band.name)
            for band in self.bands
        ]
        detections: list[ChangeDetectionResult | None] = [None] * n_bands
        unfilled_tiles: list[np.ndarray] = [
            np.zeros(self.grid.grid_shape, dtype=bool)
            for _ in range(n_bands)
        ]
        ref_indices = [i for i in range(n_bands) if had_reference[i]]
        if ref_indices:
            with perf.profiled("scoring"):
                capture_lr_stack = downsample_many(
                    cleaned[np.array(ref_indices)], ratio
                )
                valid_lr_base = (
                    downsample_image(
                        (~cloud_pixels).astype(np.float64), ratio
                    )
                    > 0.5
                )
                reference_stack = []
                valid_stack = []
                for band_idx in ref_indices:
                    band = self.bands[band_idx]
                    _, reference_lr = self.cache.get(
                        capture.location, band.name
                    )
                    valid_lr = valid_lr_base
                    unfilled_lr = ~self.cache.get_validity(
                        capture.location, band.name
                    )
                    if unfilled_lr.any():
                        valid_lr = valid_lr & ~unfilled_lr
                        unfilled_px = (
                            np.repeat(
                                np.repeat(unfilled_lr, ratio, axis=0),
                                ratio,
                                axis=1,
                            )[: self.image_shape[0], : self.image_shape[1]]
                        )
                        unfilled_tiles[band_idx] = self.grid.reduce_any(
                            unfilled_px
                        )
                    reference_stack.append(reference_lr)
                    valid_stack.append(valid_lr)
                results = detect_changes_many(
                    np.stack(reference_stack),
                    capture_lr_stack,
                    self.grid,
                    ratio,
                    self.config.theta,
                    np.stack(valid_stack),
                )
            for band_idx, detection in zip(ref_indices, results):
                detections[band_idx] = detection
        return [
            self._assemble_band_result(
                capture,
                self.bands[band_idx],
                cleaned[band_idx],
                cloud_pixels,
                cloudy_tiles,
                guaranteed,
                had_reference[band_idx],
                detections[band_idx],
                unfilled_tiles[band_idx],
            )
            for band_idx in range(n_bands)
        ]

    # ------------------------------------------------------------------
    def _process_band(
        self,
        capture: Capture,
        band: Band,
        cloud_pixels: np.ndarray,
        cloudy_tiles: np.ndarray,
        guaranteed: bool,
    ) -> BandEncodeResult:
        image = capture.pixels[band.name]
        ratio = self.config.reference_downsample
        # Cloud removal: zero out detected cloud before anything else.
        cleaned = np.where(cloud_pixels, 0.0, image)
        detection: ChangeDetectionResult | None = None
        had_reference = self.cache.has(capture.location, band.name)
        unfilled_tiles = np.zeros(self.grid.grid_shape, dtype=bool)
        if had_reference:
            # Always fit illumination against the cached reference (even for
            # guaranteed full downloads) so the ground can normalize every
            # ingested tile into one consistent reference basis.
            _, reference_lr = self.cache.get(capture.location, band.name)
            capture_lr = downsample_image(cleaned, ratio)
            valid_lr = downsample_image((~cloud_pixels).astype(np.float64), ratio) > 0.5
            # Reference pixels the ground marked invalid were never filled
            # by a download (cold start, or persistent cloud): exclude them
            # from the illumination fit and force their tiles to "changed"
            # so the ground can fill them in.
            unfilled_lr = ~self.cache.get_validity(capture.location, band.name)
            if unfilled_lr.any():
                valid_lr &= ~unfilled_lr
                unfilled_px = (
                    np.repeat(
                        np.repeat(unfilled_lr, ratio, axis=0), ratio, axis=1
                    )[: self.image_shape[0], : self.image_shape[1]]
                )
                unfilled_tiles = self.grid.reduce_any(unfilled_px)
            with perf.profiled("scoring"):
                detection = detect_changes(
                    reference_lr,
                    capture_lr,
                    self.grid,
                    ratio,
                    self.config.theta,
                    valid_lr=valid_lr,
                )
        return self._assemble_band_result(
            capture,
            band,
            cleaned,
            cloud_pixels,
            cloudy_tiles,
            guaranteed,
            had_reference,
            detection,
            unfilled_tiles,
        )

    def _assemble_band_result(
        self,
        capture: Capture,
        band: Band,
        cleaned: np.ndarray,
        cloud_pixels: np.ndarray,
        cloudy_tiles: np.ndarray,
        guaranteed: bool,
        had_reference: bool,
        detection: ChangeDetectionResult | None,
        unfilled_tiles: np.ndarray,
    ) -> BandEncodeResult:
        """Download decision + ROI encode shared by both band paths."""
        gain, offset = (
            (detection.gain, detection.offset)
            if detection is not None
            else (1.0, 0.0)
        )
        if guaranteed or not had_reference:
            download = ~cloudy_tiles
            changed_fraction = float(download.mean())
        else:
            assert detection is not None
            changed = detection.changed_tiles | unfilled_tiles
            changed_fraction = float(changed.mean())
            download = changed & ~cloudy_tiles
        if not download.any():
            return BandEncodeResult(
                band=band.name,
                downloaded_tiles=download,
                cloudy_tiles=cloudy_tiles,
                changed_fraction=changed_fraction,
                bytes_downlinked=_ALIGNMENT_BYTES,
                psnr_downloaded=float("inf"),
                reconstruction=np.zeros(self.image_shape, dtype=np.float64),
                gain=gain,
                offset=offset,
                had_reference=had_reference,
                cloudy_pixels=cloud_pixels,
            )
        roi_pixels = int(
            (self.grid.tile_pixel_counts() * download.astype(np.int64)).sum()
        )
        target_bytes = max(64, int(self.config.gamma_bpp * roi_pixels / 8.0))
        result = self._encode_roi(
            capture.location, band.name, cleaned, download, target_bytes
        )
        return BandEncodeResult(
            band=band.name,
            downloaded_tiles=download,
            cloudy_tiles=cloudy_tiles,
            changed_fraction=changed_fraction,
            bytes_downlinked=result.coded_bytes + _ALIGNMENT_BYTES,
            psnr_downloaded=result.psnr_roi,
            reconstruction=result.reconstruction,
            gain=gain,
            offset=offset,
            had_reference=had_reference,
            detection=detection,
            cloudy_pixels=cloud_pixels,
            layers=result.layers,
            layers_factory=result.layers_factory,
        )

    def _encode_roi(
        self,
        location: str,
        band: str,
        image: np.ndarray,
        roi: np.ndarray,
        target_bytes: int,
    ):
        """Rate-targeted ROI encode with a warm-started step search."""
        return self.rate.encode_roi((location, band), image, roi, target_bytes)
