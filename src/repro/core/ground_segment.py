"""The Earth+ ground segment (§4.2): mosaic, scoring, and upload planning.

The ground stations are Earth+'s "overlay point": they see everything every
satellite downloads, so they can (a) maintain the freshest cloud-free view
of each location (the :class:`~repro.core.reference.GroundMosaic`), (b)
re-screen downloads with the accurate cloud detector before content becomes
reference material, and (c) plan which reference updates to uplink to which
satellite within the per-contact uplink budget, skipping a random subset
when the budget falls short (§5, "Handling bandwidth fluctuation").

The mosaic is stored in an illumination-*normalized* space: each downloaded
tile is mapped through the inverse of its capture's fitted illumination, so
tiles downloaded weeks apart compose into one consistent reference — this is
what makes a single (gain, offset) pair per capture sufficient on board.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields

import numpy as np

from repro.codec.metrics import psnr as psnr_metric
from repro.core.change_detection import align_illumination
from repro.core.cloud import CloudDetector
from repro.core.config import EarthPlusConfig
from repro.core.encoder import CaptureEncodeResult
from repro.core.reference import (
    GroundMosaic,
    OnboardReferenceCache,
    ReferenceUpdate,
)
from repro.core.tiles import TileGrid
from repro.errors import PipelineError
from repro.imagery.bands import Band
from repro.imagery.noise import stable_hash
from repro.imagery.sensor import Capture


@dataclass
class ScoreRecord:
    """Ground-side quality assessment of one capture's reconstruction.

    Attributes:
        psnr: PSNR of the ground's reconstruction vs. the true capture,
            over non-cloudy pixels.  The sentinel 0.0 means the capture
            had no scoreable pixels at all (every tile cloudy); real
            captures of [0, 1] imagery always score strictly above 0 dB,
            and the run-level aggregates exclude the sentinel.
        downloaded_tile_fraction: Fraction of tiles downloaded (mean over
            bands; 0.0 for band-less results).
        bytes_downlinked: Total downlink bytes for the capture.
    """

    psnr: float
    downloaded_tile_fraction: float
    bytes_downlinked: int


@dataclass
class UplinkPlan:
    """Outcome of one upload-planning round for one satellite.

    Attributes:
        updates: Updates that fit the budget (already applied to the cache).
        bytes_used: Uplink bytes consumed.
        skipped: Number of (location, band) updates skipped for lack of
            budget.
    """

    updates: list[ReferenceUpdate] = field(default_factory=list)
    bytes_used: int = 0
    skipped: int = 0


@dataclass
class UplinkStats:
    """Running update-level uplink accounting across a whole run.

    Every field is a plain count, so the class is a commutative monoid
    under field-wise addition: :meth:`identity` is the empty run,
    :meth:`merge` combines per-shard partials, and
    :meth:`from_run_stats`/:meth:`as_run_stats` round-trip losslessly
    through the dict carried on ``RunResult.uplink_stats`` — workers can
    finalize independently and the driver merges the dicts exactly.

    Attributes:
        bytes_sent: Total reference-update bytes moved up.
        updates_sent: Updates applied to satellite caches.
        updates_skipped: Updates skipped for lack of uplink budget.
        full_update_bytes: Bytes of full (non-delta) updates.
        full_update_count: Number of full updates.
        delta_update_bytes: Bytes of delta updates.
        delta_update_count: Number of delta updates.
    """

    bytes_sent: int = 0
    updates_sent: int = 0
    updates_skipped: int = 0
    full_update_bytes: int = 0
    full_update_count: int = 0
    delta_update_bytes: int = 0
    delta_update_count: int = 0

    @classmethod
    def identity(cls) -> "UplinkStats":
        """The merge identity: the stats of a run that moved nothing."""
        return cls()

    @classmethod
    def from_run_stats(cls, stats: dict[str, int]) -> "UplinkStats":
        """Rebuild from the ``RunResult.uplink_stats`` dict."""
        return cls(**stats)

    def merge(self, other: "UplinkStats") -> "UplinkStats":
        """Field-wise sum (associative, commutative, identity-respecting)."""
        return UplinkStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in dataclass_fields(self)
            }
        )

    def record_sent(self, update: ReferenceUpdate, cost: int) -> None:
        """Account one applied update."""
        self.updates_sent += 1
        if update.full:
            self.full_update_bytes += cost
            self.full_update_count += 1
        else:
            self.delta_update_bytes += cost
            self.delta_update_count += 1

    def as_run_stats(self) -> dict[str, int]:
        """The update-level dict carried on ``RunResult.uplink_stats``."""
        return {
            "bytes_sent": self.bytes_sent,
            "updates_sent": self.updates_sent,
            "updates_skipped": self.updates_skipped,
            "full_update_bytes": self.full_update_bytes,
            "full_update_count": self.full_update_count,
            "delta_update_bytes": self.delta_update_bytes,
            "delta_update_count": self.delta_update_count,
        }


class GroundSegment:
    """Ground-station logic shared by every satellite of the constellation.

    Args:
        config: Earth+ tunables.
        bands: Constellation band set.
        image_shape: Capture pixel shape.
        ground_detector: The accurate (expensive) cloud detector.
        seed: Seed for the random skipping of updates under uplink pressure.
    """

    def __init__(
        self,
        config: EarthPlusConfig,
        bands: tuple[Band, ...],
        image_shape: tuple[int, int],
        ground_detector: CloudDetector | None,
        seed: int = 0,
        expected_gain=None,
        basis_gain: float = 0.9,
    ) -> None:
        self.config = config
        self.bands = bands
        self.image_shape = image_shape
        self.ground_detector = ground_detector
        self.grid = TileGrid(image_shape, config.tile_size)
        self.mosaic = GroundMosaic(image_shape, config.tile_size)
        self.seed = seed
        if expected_gain is None:
            from repro.imagery.illumination import IlluminationModel

            expected_gain = IlluminationModel(seed=0).expected_gain
        #: Callable t_days -> deterministic illumination gain (known from
        #: acquisition geometry); used to anchor mosaic normalization.
        self.expected_gain = expected_gain
        #: The absolute gain the mosaic basis is expressed in.
        self.basis_gain = basis_gain
        self._plan_counter = 0
        self._plan_counters: dict[int, int] = {}
        self._journal = None
        self.stats = UplinkStats()

    def enable_sync_journal(self, journal) -> None:
        """Switch to epoch-synchronized mode (see :mod:`repro.core.sharding`).

        Mosaic writes are journaled into ``journal`` instead of applied,
        reads keep seeing the mosaic as of the last synchronization, and
        the uplink-skip RNG switches from the global plan counter to
        per-satellite streams (a global counter would depend on the
        interleaving of satellites across shards).
        """
        self._journal = journal

    def apply_ingests(self, entries) -> None:
        """Apply merged journal entries to the mosaic, in the given order.

        Called at epoch boundaries with the canonically-sorted union of
        every shard's journal; every shard applies the same sequence, so
        all mosaic replicas stay identical.
        """
        for entry in entries:
            self.mosaic.ingest_tiles(
                entry.location,
                entry.band,
                entry.t_days,
                entry.image,
                entry.tile_mask,
                pixel_valid=entry.pixel_valid,
            )

    @property
    def uplink_bytes_total(self) -> int:
        """Total reference-update bytes sent (see :class:`UplinkStats`)."""
        return self.stats.bytes_sent

    @property
    def updates_skipped_total(self) -> int:
        """Total updates skipped under budget pressure."""
        return self.stats.updates_skipped

    # ------------------------------------------------------------------
    # Ingest + scoring
    # ------------------------------------------------------------------
    def ingest(
        self, result: CaptureEncodeResult, capture: Capture
    ) -> ScoreRecord | None:
        """Fold a downlinked capture into the mosaic and score it.

        Args:
            result: The on-board pipeline's output (carries decoded
                reconstructions; byte accounting already done on board).
            capture: The true capture — used only for scoring, mirroring
                an evaluation harness that keeps raw ground truth.

        Returns:
            A :class:`ScoreRecord`, or None for dropped captures.
        """
        if result.dropped:
            return None
        psnrs: list[float] = []
        downloaded_fractions: list[float] = []
        # Ground re-screens downloads with the accurate detector once per
        # capture (clouds are shared across bands): pixels it deems cloudy
        # never enter the mosaic, even when the on-board detector missed
        # them — this is what keeps reference content cloud-free (§4.3).
        ground_cloud_px = np.zeros(self.grid.image_shape, dtype=bool)
        if self.ground_detector is not None:
            ground_cloud_px = self.ground_detector.detect(
                capture.pixels, capture.bands, self.grid
            )
        for band_result in result.bands:
            band = band_result.band
            truth = capture.pixels[band]
            downloaded = band_result.downloaded_tiles
            cloud_tiles = band_result.cloudy_tiles
            # Reconstruction the ground believes: downloaded tiles from the
            # codec output, everything else from the aligned mosaic.
            estimate = self._ground_estimate(
                capture.location, band, band_result, downloaded
            )
            # Quality is scored over the usable (non-cloud) content: pixels
            # the on-board pipeline zeroed as cloud are excluded, as are
            # whole tiles removed as cloudy.
            valid = ~self.grid.expand(cloud_tiles.astype(np.float64)).astype(bool)
            if band_result.cloudy_pixels is not None:
                valid &= ~band_result.cloudy_pixels
            if valid.any():
                psnrs.append(psnr_metric(truth[valid], estimate[valid]))
            downloaded_fractions.append(float(downloaded.mean()))
            # Normalize downloaded content before it becomes reference
            # material, so mosaic tiles from different days compose; only
            # pixels clear in BOTH detectors' views are written.
            if downloaded.any():
                pixel_valid = ~ground_cloud_px
                if band_result.cloudy_pixels is not None:
                    pixel_valid &= ~band_result.cloudy_pixels
                normalized = self._normalize_to_mosaic_basis(
                    band_result.reconstruction, result.t_days
                )
                if self._journal is not None:
                    from repro.core.sharding import MosaicIngest

                    self._journal.add_ingest(
                        MosaicIngest(
                            t_days=result.t_days,
                            location=capture.location,
                            satellite_id=capture.satellite_id,
                            band=band,
                            image=normalized,
                            tile_mask=downloaded,
                            pixel_valid=pixel_valid,
                        )
                    )
                else:
                    self.mosaic.ingest_tiles(
                        capture.location,
                        band,
                        result.t_days,
                        normalized,
                        downloaded,
                        pixel_valid=pixel_valid,
                    )
        # Degenerate captures score as finite sentinels, never inf/NaN: a
        # fully-cloudy capture has no scoreable pixels (psnr 0.0) and a
        # band-less result would otherwise hit np.mean([]) (NaN plus a
        # RuntimeWarning) — sentinels keep aggregation warning-free.
        mean_psnr = float(np.mean(psnrs)) if psnrs else 0.0
        return ScoreRecord(
            psnr=mean_psnr,
            downloaded_tile_fraction=(
                float(np.mean(downloaded_fractions))
                if downloaded_fractions
                else 0.0
            ),
            bytes_downlinked=result.total_bytes,
        )

    def _normalize_to_mosaic_basis(
        self, reconstruction: np.ndarray, t_days: float
    ) -> np.ndarray:
        """Map fresh content into the mosaic's absolute radiometric basis.

        Ground segments know acquisition geometry exactly, so the
        deterministic (sun-elevation) component of illumination is divided
        out — the standard top-of-atmosphere correction every L1C-style
        product applies.  This anchors all mosaic content to one absolute
        basis with *no fitted feedback loop*: only the small unpredictable
        atmospheric jitter remains as per-ingest noise, and it cannot
        compound.  (Fitting the normalization against mosaic content was
        rejected: regression on genuinely-changed tiles is
        attenuation-biased and the bias compounds across ingests.)
        """
        expected = self.expected_gain(t_days)
        if expected <= 1e-9:
            return np.clip(reconstruction, 0.0, 1.0)
        return np.clip(
            reconstruction * (self.basis_gain / expected), 0.0, 1.0
        )

    def _ground_estimate(
        self,
        location: str,
        band: str,
        band_result,
        downloaded: np.ndarray,
    ) -> np.ndarray:
        """Ground reconstruction: codec output + illumination-aligned mosaic."""
        if self.mosaic.has(location, band):
            base = self.mosaic.image(location, band)
            estimate = np.clip(
                base * band_result.gain + band_result.offset, 0.0, 1.0
            )
        else:
            estimate = np.zeros(self.image_shape, dtype=np.float64)
        if downloaded.any():
            mask = self.grid.expand(downloaded.astype(np.float64)).astype(bool)
            estimate = np.where(mask, band_result.reconstruction, estimate)
        return estimate

    # ------------------------------------------------------------------
    # Upload planning
    # ------------------------------------------------------------------
    def plan_uploads(
        self,
        cache: OnboardReferenceCache,
        locations: list[str],
        now_days: float,
        uplink_budget_bytes: int,
        satellite_id: int | None = None,
    ) -> UplinkPlan:
        """Build and apply reference updates for one satellite's contact.

        Updates are built per (location, band) wherever the mosaic holds
        fresher content than the satellite's cache.  When the budget cannot
        carry all of them, a random subset is skipped — the cached (older)
        references keep working at a small downlink cost, exactly the
        paper's degradation mode.

        Args:
            cache: The target satellite's reference cache (mutated).
            locations: Locations the satellite will overfly before its next
                contact.
            now_days: Contact time.
            uplink_budget_bytes: Bytes available on this contact's uplink.
            satellite_id: The planning satellite.  In epoch-synchronized
                mode the random-skip stream is keyed per satellite (a
                global counter would observe the cross-satellite
                interleaving, which sharding changes); the legacy mode
                keeps the historical global-counter stream so
                ``ground_sync_days = 0`` results are byte-unchanged.

        Returns:
            The applied plan with byte accounting.
        """
        if uplink_budget_bytes < 0:
            raise PipelineError(
                f"uplink budget must be >= 0, got {uplink_budget_bytes}"
            )
        candidates: list[ReferenceUpdate] = []
        for location in locations:
            for band in self.bands:
                if not self.mosaic.has(location, band.name):
                    continue
                reference_lr = self.mosaic.reference_lr(
                    location, band.name, self.config.reference_downsample
                )
                validity = self.mosaic.reference_validity_lr(
                    location, band.name, self.config.reference_downsample
                )
                update = cache.build_update(
                    location,
                    band.name,
                    now_days,
                    reference_lr,
                    validity=validity,
                    delta=self.config.delta_reference_updates,
                )
                if update is not None:
                    candidates.append(update)
        # Randomized skipping under budget pressure (deterministic stream).
        if self._journal is not None:
            if satellite_id is None:
                raise PipelineError(
                    "plan_uploads requires satellite_id in "
                    "epoch-synchronized mode"
                )
            counter = self._plan_counters.get(satellite_id, 0)
            self._plan_counters[satellite_id] = counter + 1
            rng = np.random.default_rng(
                stable_hash(
                    self.seed, "uplink-skip-sat", satellite_id, counter
                )
            )
        else:
            rng = np.random.default_rng(
                stable_hash(self.seed, "uplink-skip", self._plan_counter)
            )
            self._plan_counter += 1
        order = rng.permutation(len(candidates))
        plan = UplinkPlan()
        for idx in order:
            update = candidates[int(idx)]
            cost = update.n_bytes
            if plan.bytes_used + cost > uplink_budget_bytes:
                plan.skipped += 1
                continue
            cache.apply_update(update)
            plan.updates.append(update)
            plan.bytes_used += cost
            self.stats.record_sent(update, cost)
        self.stats.bytes_sent += plan.bytes_used
        self.stats.updates_skipped += plan.skipped
        return plan
