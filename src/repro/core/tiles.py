"""The geographic tile grid: the unit Earth+ reasons in.

Every Earth+ decision — changed or not, cloudy or not, download or not — is
made per 64x64-pixel tile (§3).  :class:`TileGrid` owns the index arithmetic:
partitioning an image into tiles (edge tiles may be smaller), reducing pixel
maps to per-tile statistics, and expanding tile masks back to pixel masks.

Invariant (property-tested): the tiles exactly partition the image — every
pixel belongs to exactly one tile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class TileGrid:
    """Tiling of an image shape into fixed-size square tiles.

    Attributes:
        image_shape: The image's ``(height, width)``.
        tile_size: Tile edge in pixels.
    """

    image_shape: tuple[int, int]
    tile_size: int

    def __post_init__(self) -> None:
        height, width = self.image_shape
        if height <= 0 or width <= 0:
            raise ConfigError(f"image_shape must be positive, got {self.image_shape}")
        if self.tile_size <= 0:
            raise ConfigError(f"tile_size must be positive, got {self.tile_size}")

    @property
    def grid_shape(self) -> tuple[int, int]:
        """Tile-grid dimensions ``(tiles_y, tiles_x)``."""
        height, width = self.image_shape
        return (
            (height + self.tile_size - 1) // self.tile_size,
            (width + self.tile_size - 1) // self.tile_size,
        )

    @property
    def n_tiles(self) -> int:
        """Total number of tiles."""
        tiles_y, tiles_x = self.grid_shape
        return tiles_y * tiles_x

    def tile_bounds(self, ty: int, tx: int) -> tuple[int, int, int, int]:
        """Pixel bounds ``(y0, y1, x0, x1)`` of tile ``(ty, tx)``.

        Raises:
            ConfigError: For out-of-range tile indices.
        """
        tiles_y, tiles_x = self.grid_shape
        if not (0 <= ty < tiles_y and 0 <= tx < tiles_x):
            raise ConfigError(
                f"tile ({ty},{tx}) out of grid {self.grid_shape}"
            )
        height, width = self.image_shape
        y0 = ty * self.tile_size
        x0 = tx * self.tile_size
        return y0, min(y0 + self.tile_size, height), x0, min(x0 + self.tile_size, width)

    def iter_tiles(self) -> Iterator[tuple[int, int]]:
        """Yield tile indices row-major."""
        tiles_y, tiles_x = self.grid_shape
        for ty in range(tiles_y):
            for tx in range(tiles_x):
                yield ty, tx

    def tile_view(self, image: np.ndarray, ty: int, tx: int) -> np.ndarray:
        """Array view of tile ``(ty, tx)`` of ``image``."""
        self._check_image(image)
        y0, y1, x0, x1 = self.tile_bounds(ty, tx)
        return image[y0:y1, x0:x1]

    def reduce_mean(self, image: np.ndarray) -> np.ndarray:
        """Per-tile mean of a pixel map.

        Args:
            image: Array matching ``image_shape``.

        Returns:
            float64 array of shape ``grid_shape``.
        """
        self._check_image(image)
        return self._reduce(image.astype(np.float64), np.mean)

    def reduce_max(self, image: np.ndarray) -> np.ndarray:
        """Per-tile maximum of a pixel map."""
        self._check_image(image)
        return self._reduce(image.astype(np.float64), np.max)

    def reduce_any(self, mask: np.ndarray) -> np.ndarray:
        """Per-tile logical OR of a boolean pixel mask."""
        self._check_image(mask)
        return self._reduce(mask.astype(bool), np.any).astype(bool)

    def reduce_fraction(self, mask: np.ndarray) -> np.ndarray:
        """Per-tile fraction of True pixels of a boolean mask."""
        self._check_image(mask)
        return self._reduce(mask.astype(np.float64), np.mean)

    def _reduce(self, image: np.ndarray, func) -> np.ndarray:
        tiles_y, tiles_x = self.grid_shape
        height, width = self.image_shape
        tile = self.tile_size
        if height % tile == 0 and width % tile == 0:
            # Fast path: reshape into (ty, tile, tx, tile) blocks.
            blocks = image.reshape(tiles_y, tile, tiles_x, tile)
            return func(blocks, axis=(1, 3))
        out = np.zeros((tiles_y, tiles_x), dtype=np.result_type(image, np.float64))
        for ty in range(tiles_y):
            for tx in range(tiles_x):
                y0, y1, x0, x1 = self.tile_bounds(ty, tx)
                out[ty, tx] = func(image[y0:y1, x0:x1])
        return out

    def reduce_mean_many(self, stack: np.ndarray) -> np.ndarray:
        """Per-tile mean of a ``(N, height, width)`` stack of pixel maps.

        Bit-identical per slice to :meth:`reduce_mean`: when the tile size
        divides the image the blocked reduction runs over the same elements
        in the same order per output cell; otherwise each slice falls back
        to the per-tile loop.

        Args:
            stack: Array of shape ``(N,) + image_shape``.

        Returns:
            float64 array of shape ``(N,) + grid_shape``.
        """
        if stack.ndim != 3 or tuple(stack.shape[1:]) != tuple(self.image_shape):
            raise ConfigError(
                f"stack shape {stack.shape} != (N,) + {self.image_shape}"
            )
        tiles_y, tiles_x = self.grid_shape
        height, width = self.image_shape
        tile = self.tile_size
        if height % tile == 0 and width % tile == 0:
            blocks = stack.astype(np.float64).reshape(
                stack.shape[0], tiles_y, tile, tiles_x, tile
            )
            return blocks.mean(axis=(2, 4))
        return np.stack([self.reduce_mean(plane) for plane in stack])

    def expand(self, tile_values: np.ndarray) -> np.ndarray:
        """Broadcast per-tile values back to pixel resolution.

        Args:
            tile_values: Array of shape ``grid_shape``.

        Returns:
            Array of ``image_shape`` with each tile's pixels set to its value.
        """
        if tuple(tile_values.shape) != self.grid_shape:
            raise ConfigError(
                f"tile_values shape {tile_values.shape} != grid {self.grid_shape}"
            )
        height, width = self.image_shape
        expanded = np.repeat(
            np.repeat(tile_values, self.tile_size, axis=0), self.tile_size, axis=1
        )
        return expanded[:height, :width]

    def tile_pixel_counts(self) -> np.ndarray:
        """Pixels per tile (edge tiles may be smaller)."""
        tiles_y, tiles_x = self.grid_shape
        out = np.zeros((tiles_y, tiles_x), dtype=np.int64)
        for ty in range(tiles_y):
            for tx in range(tiles_x):
                y0, y1, x0, x1 = self.tile_bounds(ty, tx)
                out[ty, tx] = (y1 - y0) * (x1 - x0)
        return out

    def _check_image(self, image: np.ndarray) -> None:
        if tuple(image.shape) != tuple(self.image_shape):
            raise ConfigError(
                f"image shape {image.shape} != grid image shape {self.image_shape}"
            )
