"""Configuration: the Doves satellite specification and Earth+ tunables.

:class:`DovesSpec` transcribes the paper's Table 1 (with the same inferred
values the paper italicizes).  :class:`EarthPlusConfig` gathers every knob the
paper introduces: the change threshold ``theta`` (§4.3), the per-tile bit
budget ``gamma`` (§5), the reference downsampling ratio, the
guaranteed-download period, and the uplink-saving switches (on-board cache,
delta updates).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class DovesSpec:
    """Doves-constellation satellite specification (paper Table 1).

    Attributes:
        ground_contact_duration_s: Usable seconds per ground contact.
        ground_contacts_per_day: Contacts per satellite per day.
        uplink_bps: Ground-to-satellite bandwidth (S-band).
        downlink_bps: Satellite-to-ground bandwidth.
        onboard_storage_bytes: Total on-board storage.
        image_resolution: Sensor frame resolution (height, width).
        image_channels: Number of spectral channels (RGB + InfraRed).
        raw_image_bytes: Raw size of one captured frame.
        ground_sampling_distance_m: Metres per pixel.
        revisit_period_days: Single-satellite revisit period (§3: 10-15 d).
    """

    ground_contact_duration_s: float = 600.0
    ground_contacts_per_day: int = 7
    uplink_bps: float = 250e3
    downlink_bps: float = 200e6
    onboard_storage_bytes: int = 360 * 10**9
    image_resolution: tuple[int, int] = (4400, 6600)
    image_channels: int = 4
    raw_image_bytes: int = 150 * 10**6
    ground_sampling_distance_m: float = 3.7
    revisit_period_days: float = 12.0

    @property
    def image_pixels(self) -> int:
        """Pixels per captured frame (one channel)."""
        return self.image_resolution[0] * self.image_resolution[1]

    @property
    def image_area_km2(self) -> float:
        """Ground footprint of one frame in square kilometres."""
        gsd_km = self.ground_sampling_distance_m / 1000.0
        return self.image_pixels * gsd_km * gsd_km

    @property
    def bytes_per_km2(self) -> float:
        """Raw storage cost of one square kilometre of imagery.

        The paper's Appendix A estimates 0.87 MB/km^2 for Doves frames.
        """
        return self.raw_image_bytes / self.image_area_km2

    @property
    def uplink_bytes_per_contact(self) -> int:
        """Uplink bytes movable during one ground contact."""
        return int(self.uplink_bps * self.ground_contact_duration_s / 8.0)

    @property
    def downlink_bytes_per_contact(self) -> int:
        """Downlink bytes movable during one ground contact."""
        return int(self.downlink_bps * self.ground_contact_duration_s / 8.0)


@dataclass(frozen=True)
class EarthPlusConfig:
    """Every tunable the Earth+ pipeline exposes.

    Attributes:
        tile_size: Geographic tile edge in pixels (§3: 64x64 default).
        theta: Change-detection threshold on per-tile mean absolute pixel
            difference of [0, 1]-normalized values (§3: 0.01).
        gamma_bpp: Bits per pixel granted to each *downloaded* tile; the
            encoder's whole-image bpp is ``gamma_bpp`` times the changed
            fraction, exactly the paper's Kakadu configuration (§5).
        reference_downsample: Linear downsampling ratio of uploaded
            reference images (the paper's headline operating point
            compresses references ~2601x, i.e. ratio ~36 with 1-byte
            pixels against 2-byte raws).
        reference_max_cloud: Maximum cloud fraction for an image to qualify
            as a reference (§3: 1 %).
        drop_cloud_fraction: Captures cloudier than this are dropped
            on-board entirely (§5: 50 %).
        guaranteed_download_days: Period of the full-image guaranteed
            download (§5: monthly).
        cache_references_onboard: Keep reference images cached on the
            satellite and upload only deltas (§4.3).
        delta_reference_updates: Upload only changed low-res tiles of a new
            reference (requires the on-board cache).
        n_quality_layers: Quality layers per encoded image, for downlink
            adaptation (§5).
        ground_sync_days: Cadence (days) at which the ground segment
            synchronizes constellation-shared state — the shared reference
            mosaic and the guaranteed-download ledger.  0 (the default)
            models an always-synchronized ground segment: every ingest is
            visible to the next visit immediately, the legacy semantics.
            A positive cadence journals ground-state writes within each
            epoch and applies them at epoch boundaries in canonical visit
            order, which makes the simulation shard-count-invariant (the
            basis of ``--shards``); satellites then plan against state
            that is at most one epoch stale, mirroring a ground segment
            whose stations reconcile on a schedule rather than
            instantaneously.
        reference_bytes_per_pixel: Storage bytes per low-res reference pixel
            (uint8 storage = 1).
        raw_bytes_per_pixel: Bytes per full-res raw pixel (12-bit sensor
            packed in 2 bytes).
        codec_backend: ``"model"`` uses the calibrated fast rate model for
            ROI encoding (default; right for parameter sweeps); any other
            value selects the full bit-exact arithmetic-coded codec so
            every downlinked byte is a real bitstream byte, with the
            entropy-coding engine resolved through the codec backend
            registry (``repro.codec.registry``): ``"reference"`` is the
            per-bit coder, ``"vectorized"`` the batched numpy fast path,
            ``"compiled"`` the native-kernel engine (falls back to
            vectorized when no C toolchain is present), and ``"real"``
            picks the best engine available on this machine.  All engines
            are proven byte-identical by the differential test harness,
            so the choice never affects results — only wall time — and
            never enters the experiment-store key.
        codec_parallel_tiles: Worker processes for the codec's tile-level
            parallel encode/decode driver (1 = in-process; only meaningful
            for the real-codec backends).
    """

    tile_size: int = 64
    theta: float = 0.01
    gamma_bpp: float = 0.75
    reference_downsample: int = 8
    reference_max_cloud: float = 0.01
    drop_cloud_fraction: float = 0.5
    guaranteed_download_days: float = 30.0
    cache_references_onboard: bool = True
    delta_reference_updates: bool = True
    n_quality_layers: int = 1
    ground_sync_days: float = 0.0
    reference_bytes_per_pixel: int = 1
    raw_bytes_per_pixel: int = 2
    codec_backend: str = "model"
    codec_parallel_tiles: int = 1

    def __post_init__(self) -> None:
        if self.tile_size <= 0:
            raise ConfigError(f"tile_size must be positive, got {self.tile_size}")
        if self.theta < 0:
            raise ConfigError(f"theta must be >= 0, got {self.theta}")
        if self.gamma_bpp <= 0:
            raise ConfigError(f"gamma_bpp must be positive, got {self.gamma_bpp}")
        if self.reference_downsample < 1:
            raise ConfigError(
                f"reference_downsample must be >= 1, got {self.reference_downsample}"
            )
        if not 0.0 <= self.reference_max_cloud <= 1.0:
            raise ConfigError(
                f"reference_max_cloud must be in [0,1], got {self.reference_max_cloud}"
            )
        if not 0.0 < self.drop_cloud_fraction <= 1.0:
            raise ConfigError(
                f"drop_cloud_fraction must be in (0,1], got {self.drop_cloud_fraction}"
            )
        if self.guaranteed_download_days <= 0:
            raise ConfigError(
                "guaranteed_download_days must be positive, "
                f"got {self.guaranteed_download_days}"
            )
        if self.n_quality_layers < 1:
            raise ConfigError(
                f"n_quality_layers must be >= 1, got {self.n_quality_layers}"
            )
        if self.ground_sync_days < 0:
            raise ConfigError(
                f"ground_sync_days must be >= 0, got {self.ground_sync_days}"
            )
        if self.delta_reference_updates and not self.cache_references_onboard:
            raise ConfigError(
                "delta_reference_updates requires cache_references_onboard"
            )
        if self.codec_backend not in (
            "model",
            "real",
            "reference",
            "vectorized",
            "compiled",
        ):
            raise ConfigError(
                f"codec_backend must be 'model', 'real', 'reference', "
                f"'vectorized', or 'compiled', got {self.codec_backend!r}"
            )
        if self.codec_parallel_tiles < 1:
            raise ConfigError(
                f"codec_parallel_tiles must be >= 1, "
                f"got {self.codec_parallel_tiles}"
            )

    def reference_compression_ratio(self) -> float:
        """Raw-to-reference byte ratio achieved by downsampling alone."""
        area = self.reference_downsample * self.reference_downsample
        return area * self.raw_bytes_per_pixel / self.reference_bytes_per_pixel

    def with_overrides(self, **kwargs: object) -> "EarthPlusConfig":
        """Functional update helper (configs are frozen)."""
        from dataclasses import replace

        return replace(self, **kwargs)  # type: ignore[arg-type]
