"""Epoch-synchronized ground state: the journal that makes sharding exact.

The simulation's only cross-satellite coupling is ground-segment state:
the shared :class:`~repro.core.reference.GroundMosaic` (every satellite's
downloads feed every other satellite's references) and the
constellation-wide guaranteed-download ledger.  A naive satellite
partition breaks both — shard A's ingests would be invisible to shard B —
so sharded execution runs the ground segment in *epoch-synchronized*
mode (``EarthPlusConfig.ground_sync_days > 0``):

* within an epoch, ground-state **writes** (mosaic ingests, guarantee
  marks) are journaled instead of applied, and **reads** see the state as
  of the last synchronization;
* at each epoch boundary, every shard's journal is merged, sorted into
  the canonical visit order (:func:`repro.orbit.schedule.visit_order_key`
  extended per entry), and applied identically by every shard.

Because reads never observe un-synchronized writes and the boundary
application order is a pure function of the journal contents, the final
state — and therefore every downstream byte — is invariant to how
satellites are partitioned.  A sequential run with the same
``ground_sync_days`` journals and applies through this very module, so
``shards=N`` is pickle-byte-identical to ``shards=1`` by construction
(differential-tested in ``tests/integration/test_sharded_sim.py``).

The sync cadence is *semantics* (it changes which references a satellite
plans against, so it is part of the spec's content key); the shard count
is *engine configuration* (it never changes results, so the store
excludes it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import PipelineError
from repro.orbit.schedule import Visit

__all__ = [
    "MosaicIngest",
    "GuaranteeMark",
    "GroundJournal",
    "GuaranteeView",
    "apply_marks",
    "canonical_ingests",
    "canonical_marks",
    "epoch_index",
    "group_visits_by_epoch",
]


@dataclass
class MosaicIngest:
    """One journaled mosaic write (a deferred ``ingest_tiles`` call).

    Attributes:
        t_days: Capture time (leads the canonical ordering).
        location: Target location.
        satellite_id: Satellite whose download produced the content.
        band: Target band name.
        image: Full-resolution normalized content to write.
        tile_mask: Boolean tile grid of tiles to take.
        pixel_valid: Optional pixel mask (cloudy pixels keep old content).
    """

    t_days: float
    location: str
    satellite_id: int
    band: str
    image: np.ndarray
    tile_mask: np.ndarray
    pixel_valid: np.ndarray | None


@dataclass
class GuaranteeMark:
    """One journaled guarantee-ledger write.

    ``armed=True`` records a guaranteed download at ``t_days`` (the ledger
    maps the location to that time); ``armed=False`` re-arms the promise
    (the downlink deferred the guaranteed capture, so the mark is cleared
    and the guarantee fires again on the next eligible capture).
    """

    t_days: float
    location: str
    satellite_id: int
    armed: bool


def canonical_ingests(entries: list[MosaicIngest]) -> list[MosaicIngest]:
    """Mosaic writes in canonical apply order.

    The visit order key ``(t, location, satellite)`` extended by band:
    entries from one visit touch distinct (location, band) mosaic keys,
    so the band tiebreak only pins a deterministic order, it never
    changes the outcome.
    """
    return sorted(
        entries,
        key=lambda e: (e.t_days, e.location, e.satellite_id, e.band),
    )


def canonical_marks(entries: list[GuaranteeMark]) -> list[GuaranteeMark]:
    """Guarantee writes in canonical apply order.

    One visit nets at most one mark per location (:class:`GroundJournal`
    collapses a set-then-clear pair at the source), so the visit key is a
    total order here.
    """
    return sorted(
        entries, key=lambda e: (e.t_days, e.location, e.satellite_id)
    )


def apply_marks(ledger: dict[str, float], marks: list[GuaranteeMark]) -> None:
    """Apply merged guarantee marks to the base ledger, in the given order."""
    for mark in marks:
        if mark.armed:
            ledger[mark.location] = mark.t_days
        else:
            ledger.pop(mark.location, None)


class GroundJournal:
    """Per-shard buffer of un-synchronized ground-state writes.

    One journal serves one shard (one process): the ground segment routes
    mosaic writes into :meth:`add_ingest` and every satellite's
    :class:`GuaranteeView` routes ledger writes into
    :meth:`mark_set`/:meth:`mark_clear`.  :meth:`drain` hands the epoch's
    writes to the synchronizer and resets the buffer.
    """

    def __init__(self) -> None:
        self.ingests: list[MosaicIngest] = []
        self.marks: list[GuaranteeMark] = []

    def add_ingest(self, entry: MosaicIngest) -> None:
        """Journal one mosaic write."""
        self.ingests.append(entry)

    def mark_set(self, t_days: float, location: str, satellite_id: int) -> None:
        """Journal a guaranteed download at ``t_days``."""
        self.marks.append(
            GuaranteeMark(
                t_days=t_days,
                location=location,
                satellite_id=satellite_id,
                armed=True,
            )
        )

    def mark_clear(self, location: str, satellite_id: int) -> None:
        """Journal a guarantee re-arm (deferred guaranteed download).

        The clear always follows this visit's own set (the downlink phase
        defers the capture whose guarantee the capture phase just marked),
        so the pending set is collapsed into a single clear entry at the
        same time — one net mark per visit keeps the canonical order
        total.
        """
        for index in range(len(self.marks) - 1, -1, -1):
            pending = self.marks[index]
            if (
                pending.location == location
                and pending.satellite_id == satellite_id
                and pending.armed
            ):
                self.marks[index] = GuaranteeMark(
                    t_days=pending.t_days,
                    location=location,
                    satellite_id=satellite_id,
                    armed=False,
                )
                return
        raise PipelineError(
            f"guarantee re-arm for {location!r} without a pending mark "
            f"from satellite {satellite_id} in this epoch"
        )

    def drain(self) -> tuple[list[MosaicIngest], list[GuaranteeMark]]:
        """This epoch's writes; the journal is reset for the next epoch."""
        ingests, marks = self.ingests, self.marks
        self.ingests = []
        self.marks = []
        return ingests, marks


class GuaranteeView:
    """One satellite's dict-like window onto the guarantee ledger.

    Reads (:meth:`get`) see the epoch-base ledger — the state as of the
    last synchronization — while writes are journaled with this
    satellite's identity for canonical merging.  The phase kernel uses
    only ``get``/``__setitem__``/``pop``, exactly the dict operations the
    plain (always-synchronized) ledger sees, so phases are agnostic to
    which mode they run in.
    """

    def __init__(
        self, base: dict[str, float], journal: GroundJournal, satellite_id: int
    ) -> None:
        self._base = base
        self._journal = journal
        self._satellite_id = satellite_id

    def get(self, location: str, default: float | None = None):
        """The epoch-base mark for ``location`` (pending writes unseen)."""
        return self._base.get(location, default)

    def __setitem__(self, location: str, t_days: float) -> None:
        self._journal.mark_set(t_days, location, self._satellite_id)

    def pop(self, location: str, default: float | None = None):
        self._journal.mark_clear(location, self._satellite_id)
        return default


def epoch_index(t_days: float, sync_days: float) -> int:
    """Which synchronization epoch a time falls into."""
    return int(math.floor(t_days / sync_days))


def group_visits_by_epoch(
    visits: list[Visit], sync_days: float
) -> list[tuple[int, list[Visit]]]:
    """Canonically-ordered visits grouped into synchronization epochs.

    Computed from the *full* schedule so every shard derives the same
    epoch sequence and exchanges journals the same number of times;
    globally-empty epochs are skipped (no visit anywhere means no state
    to reconcile).

    Args:
        visits: The full schedule in canonical order
            (``VisitSchedule.all_visits_sorted()``).
        sync_days: Synchronization cadence (> 0).

    Returns:
        ``(epoch_index, visits)`` pairs, epoch-ascending.
    """
    if sync_days <= 0:
        raise PipelineError(
            f"sync_days must be > 0 for epoch grouping, got {sync_days}"
        )
    groups: list[tuple[int, list[Visit]]] = []
    for visit in visits:
        index = epoch_index(visit.t_days, sync_days)
        if groups and groups[-1][0] == index:
            groups[-1][1].append(visit)
        else:
            groups.append((index, [visit]))
    return groups
