"""Event-phase simulation kernel: the simulator loop as composable phases.

The constellation simulation is an event loop over time-ordered visits.
Each visit flows through three independently-schedulable phases, every one
operating on an explicit :class:`VisitEvent` carrier instead of loop-local
variables:

1. :class:`UplinkPhase` — the ground segment spends the uplink budget
   accumulated since the satellite's previous visit on reference updates
   (only for policies that implement :class:`UplinkReceiver`);
2. :class:`CapturePhase` — the sensor produces the capture and the
   satellite's compression policy processes it on board;
3. :class:`DownlinkPhase` — the capture competes for the contact capacity
   accumulated since the previous visit; over-budget captures shed
   trailing quality layers, and what cannot fit at base quality is
   deferred (guaranteed downloads) or dropped;
4. :class:`IngestPhase` — the ground segment folds the downlinked result
   into the mosaic and scores reconstruction quality.

Per-satellite mutable state lives in :class:`SatelliteState`; what a phase
may touch is exactly what it is handed.  New scenario behaviour (link
outages, alternative contact models, extra bookkeeping) composes as a new
phase rather than an edit to a monolithic loop — the processor/accelerator
decoupling argument of Duet applied to the simulator itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.config import EarthPlusConfig
from repro.core.encoder import ALIGNMENT_BYTES, CaptureEncodeResult
from repro.core.ground_segment import GroundSegment, ScoreRecord, UplinkPlan
from repro.core.reference import OnboardReferenceCache
from repro.errors import PipelineError
from repro.imagery.sensor import Capture, SatelliteSensor
from repro.obs.metrics import counters
from repro.orbit.links import DOWNLINK_STREAM, FluctuationModel
from repro.orbit.schedule import Visit


class CompressionPolicy(Protocol):
    """What the simulator requires of an on-board compression policy."""

    name: str
    uses_uplink: bool

    def process(
        self, capture: Capture, guaranteed_due: bool
    ) -> CaptureEncodeResult:
        """Compress one capture, returning full byte/tile accounting."""
        ...

    def reference_storage_bytes(self) -> int:
        """Bytes of on-board storage devoted to reference imagery."""
        ...


@runtime_checkable
class UplinkReceiver(Protocol):
    """A policy that can receive reference updates over the uplink.

    The ground segment plans uploads against the cache this method exposes;
    it never reaches into policy internals.  Policies with
    ``uses_uplink = False`` are simply never asked.
    """

    def uplink_cache(self) -> OnboardReferenceCache:
        """The on-board reference cache the ground may write into."""
        ...


@dataclass
class SatelliteState:
    """Mutable per-satellite simulation state.

    Attributes:
        satellite_id: The satellite this state belongs to.
        policy: The satellite's compression policy (owns encoder + cache).
        last_visit_days: Time of the previous visit (uplink accumulation).
        contact_count: Ground contacts consumed so far (uplink fluctuation
            stream).
        last_downlink_days: Time of the previous visit as seen by the
            downlink phase (its capacity accumulation is independent of
            the uplink's, which only advances for uplink-using policies).
        downlink_contact_count: Downlink contacts consumed so far (the
            downlink fluctuation stream's per-satellite counter).
        last_guaranteed: Location -> time of the last guaranteed full
            download.  The guarantee is a *constellation-wide* promise per
            location, so every satellite's state shares one mapping
            instance.
    """

    satellite_id: int
    policy: CompressionPolicy
    last_visit_days: float = 0.0
    contact_count: int = 0
    last_downlink_days: float = 0.0
    downlink_contact_count: int = 0
    last_guaranteed: dict[str, float] = field(default_factory=dict)


class ConstellationState:
    """Lazily-built states of every satellite in the constellation.

    Args:
        policy_factory: Called once per satellite id to build its policy.
        guarantee_journal: When given (epoch-synchronized mode), each
            satellite's ``last_guaranteed`` becomes a
            :class:`~repro.core.sharding.GuaranteeView` over the shared
            ledger — reads see the last synchronized state, writes are
            journaled with the satellite's identity.  Without it every
            satellite shares the plain ledger dict directly (the legacy
            always-synchronized semantics).
    """

    def __init__(self, policy_factory, guarantee_journal=None) -> None:
        self._factory = policy_factory
        self._journal = guarantee_journal
        self._last_guaranteed: dict[str, float] = {}
        self.satellites: dict[int, SatelliteState] = {}

    def for_satellite(self, satellite_id: int) -> SatelliteState:
        """This satellite's state, building its policy on first visit."""
        state = self.satellites.get(satellite_id)
        if state is None:
            if self._journal is not None:
                from repro.core.sharding import GuaranteeView

                guaranteed = GuaranteeView(
                    self._last_guaranteed, self._journal, satellite_id
                )
            else:
                guaranteed = self._last_guaranteed
            state = SatelliteState(
                satellite_id=satellite_id,
                policy=self._factory(satellite_id),
                last_guaranteed=guaranteed,
            )
            self.satellites[satellite_id] = state
        return state

    def close(self) -> None:
        """Release every built policy's resources (idempotent).

        Policies backed by the real codec with ``parallel_tiles > 1``
        hold worker pools; the simulator closes the whole constellation
        when a run finishes so workers never outlive it.
        """
        for state in self.satellites.values():
            close = getattr(state.policy, "close", None)
            if close is not None:
                close()


@dataclass(frozen=True)
class DownlinkReport:
    """What the downlink phase decided for one visit's capture.

    Attributes:
        capacity_bytes: Contact capacity offered to this capture (contacts
            banked since the previous visit x per-contact bytes x the
            fluctuation multiplier).
        offered_bytes: Encoded bytes the on-board pipeline wanted to send
            (0 for captures already dropped on board).
        delivered_bytes: Bytes actually moved down after any shedding
            (never exceeds ``capacity_bytes``).
        layers_shed: Trailing quality layers shed across bands to fit.
        deferred: The capture was a guaranteed download that did not fit
            even at base quality; nothing was delivered and the guarantee
            timer was re-armed so the promise retries at the next capture.
        dropped: A non-guaranteed capture did not fit even at base
            quality and was discarded at downlink time.
    """

    capacity_bytes: int
    offered_bytes: int
    delivered_bytes: int
    layers_shed: int = 0
    deferred: bool = False
    dropped: bool = False


@dataclass
class VisitEvent:
    """One visit's journey through the phase pipeline.

    Phases read what earlier phases produced and write their own outputs;
    the metrics layer observes the completed event.

    Attributes:
        visit: The scheduled visit being simulated.
        state: The observing satellite's state.
        uplink_plan: Applied reference-update plan (None when the policy
            takes no uplink or the budget is zero).
        capture: The sensor output (set by :class:`CapturePhase`).
        result: The on-board processing outcome (set by
            :class:`CapturePhase`; :class:`DownlinkPhase` may replace it
            with a layer-shed or dropped view of the same capture).
        downlink: Contact-capacity accounting (set by
            :class:`DownlinkPhase`; None when the simulation runs without
            a downlink constraint).
        score: Ground-side quality assessment (set by :class:`IngestPhase`;
            None for dropped captures).
    """

    visit: Visit
    state: SatelliteState
    uplink_plan: UplinkPlan | None = None
    capture: Capture | None = None
    result: CaptureEncodeResult | None = None
    downlink: DownlinkReport | None = None
    score: ScoreRecord | None = None


class SimulationPhase(Protocol):
    """One stage of the per-visit pipeline."""

    name: str

    def run(self, event: VisitEvent) -> None:
        """Advance ``event`` through this phase, mutating it in place."""
        ...


class UplinkPhase:
    """Spend the accumulated uplink budget on reference updates.

    Args:
        ground: The shared ground segment (plans and applies updates).
        uplink_bytes_per_contact: Uplink capacity per ground contact.
        contacts_per_day: Ground contacts per satellite per day.
        fluctuation: Optional per-contact bandwidth fluctuation.
        max_accumulation_days: Cap on how much idle uplink time can be
            banked between a satellite's visits.
    """

    name = "uplink"

    def __init__(
        self,
        ground: GroundSegment,
        uplink_bytes_per_contact: int,
        contacts_per_day: int,
        fluctuation: FluctuationModel | None = None,
        max_accumulation_days: float = 2.0,
    ) -> None:
        self.ground = ground
        self.uplink_bytes_per_contact = uplink_bytes_per_contact
        self.contacts_per_day = contacts_per_day
        self.fluctuation = fluctuation
        self.max_accumulation_days = max_accumulation_days

    def run(self, event: VisitEvent) -> None:
        state = event.state
        policy = state.policy
        if policy.uses_uplink and self.uplink_bytes_per_contact > 0:
            if not isinstance(policy, UplinkReceiver):
                raise PipelineError(
                    f"policy {policy.name!r} sets uses_uplink but does not "
                    "implement UplinkReceiver"
                )
            gap = min(
                event.visit.t_days - state.last_visit_days,
                self.max_accumulation_days,
            )
            n_contacts = max(1, int(gap * self.contacts_per_day))
            multiplier = 1.0
            if self.fluctuation is not None:
                multiplier = self.fluctuation.multiplier(
                    state.satellite_id, state.contact_count
                )
            state.contact_count += 1
            budget = int(
                n_contacts * self.uplink_bytes_per_contact * multiplier
            )
            event.uplink_plan = self.ground.plan_uploads(
                policy.uplink_cache(),
                [event.visit.location],
                event.visit.t_days,
                budget,
                satellite_id=state.satellite_id,
            )
        state.last_visit_days = event.visit.t_days


class CapturePhase:
    """Capture the scene and run the on-board compression policy.

    Args:
        sensors: Per-location capture sources.
        config: Shared tunables (guaranteed-download period).
    """

    name = "capture"

    def __init__(
        self,
        sensors: dict[str, SatelliteSensor],
        config: EarthPlusConfig,
    ) -> None:
        self.sensors = sensors
        self.config = config

    def run(self, event: VisitEvent) -> None:
        visit = event.visit
        sensor = self.sensors[visit.location]
        event.capture = sensor.capture(visit.satellite_id, visit.t_days)
        due = (
            visit.t_days
            - event.state.last_guaranteed.get(visit.location, -np.inf)
            >= self.config.guaranteed_download_days
        )
        event.result = event.state.policy.process(event.capture, due)
        if event.result.guaranteed:
            event.state.last_guaranteed[visit.location] = visit.t_days


class DownlinkPhase:
    """Constrain each capture to the satellite's banked contact capacity.

    Mirrors :class:`UplinkPhase`'s budget arithmetic on the other link:
    capacity accumulates per satellite as contacts since the previous
    visit x ``downlink_bytes_per_contact`` x the fluctuation multiplier
    (drawn from the *downlink* stream of the shared
    :class:`~repro.orbit.links.FluctuationModel`, so the two links of one
    satellite fluctuate independently).  Unused capacity is not banked
    across visits, exactly like the uplink.

    When a capture's encoded bytes exceed the capacity, trailing quality
    layers are shed band by band (greedily from the currently most
    expensive band — the layered bitstream truncates byte-exactly, see
    ``BandEncodeResult.layers``) until the capture fits.  A capture that
    does not fit even at base quality is *deferred* when it was a
    guaranteed download — nothing is sent and the guarantee timer is
    re-armed so the promise retries on the next sufficiently clear
    capture — and *dropped* otherwise (the next pass over the location
    supersedes it).

    Args:
        downlink_bytes_per_contact: Downlink capacity per ground contact.
        contacts_per_day: Ground contacts per satellite per day.
        fluctuation: Optional per-contact bandwidth fluctuation (shared
            model; this phase reads the downlink stream).
        max_accumulation_days: Cap on how much idle contact time can be
            banked between a satellite's visits.
    """

    name = "downlink"

    def __init__(
        self,
        downlink_bytes_per_contact: int,
        contacts_per_day: int,
        fluctuation: FluctuationModel | None = None,
        max_accumulation_days: float = 2.0,
    ) -> None:
        if downlink_bytes_per_contact < 0:
            raise PipelineError(
                "downlink_bytes_per_contact must be >= 0, "
                f"got {downlink_bytes_per_contact}"
            )
        self.downlink_bytes_per_contact = downlink_bytes_per_contact
        self.contacts_per_day = contacts_per_day
        self.fluctuation = fluctuation
        self.max_accumulation_days = max_accumulation_days

    def run(self, event: VisitEvent) -> None:
        result = event.result
        if result is None:
            raise PipelineError(
                "DownlinkPhase requires a completed capture phase"
            )
        bag = counters()
        bag.inc("downlink.visits")
        state = event.state
        gap = min(
            event.visit.t_days - state.last_downlink_days,
            self.max_accumulation_days,
        )
        n_contacts = max(1, int(gap * self.contacts_per_day))
        multiplier = 1.0
        if self.fluctuation is not None:
            multiplier = self.fluctuation.multiplier(
                state.satellite_id,
                state.downlink_contact_count,
                stream=DOWNLINK_STREAM,
            )
        state.downlink_contact_count += 1
        state.last_downlink_days = event.visit.t_days
        capacity = int(
            n_contacts * self.downlink_bytes_per_contact * multiplier
        )
        if result.dropped:
            event.downlink = DownlinkReport(
                capacity_bytes=capacity, offered_bytes=0, delivered_bytes=0
            )
            return
        offered = result.total_bytes
        if offered <= capacity:
            bag.inc("downlink.delivered_bytes", offered)
            event.downlink = DownlinkReport(
                capacity_bytes=capacity,
                offered_bytes=offered,
                delivered_bytes=offered,
            )
            return
        shed_result, layers_shed = self._shed_layers(result, capacity)
        if shed_result is not None:
            bag.inc("downlink.layers_shed", layers_shed)
            bag.inc("downlink.delivered_bytes", shed_result.total_bytes)
            event.result = shed_result
            event.downlink = DownlinkReport(
                capacity_bytes=capacity,
                offered_bytes=offered,
                delivered_bytes=shed_result.total_bytes,
                layers_shed=layers_shed,
            )
            return
        # Even the base layers do not fit this contact.  A guaranteed
        # download is a freshness promise, not this capture's content:
        # re-arm the timer (CapturePhase set it for this visit) so the
        # guarantee retries on the next eligible capture.
        deferred = result.guaranteed
        if deferred:
            state.last_guaranteed.pop(event.visit.location, None)
        bag.inc("downlink.deferred" if deferred else "downlink.dropped")
        event.result = replace(
            result, dropped=True, guaranteed=False, bands=[]
        )
        event.downlink = DownlinkReport(
            capacity_bytes=capacity,
            offered_bytes=offered,
            delivered_bytes=0,
            deferred=deferred,
            dropped=not deferred,
        )

    def _shed_layers(
        self, result: CaptureEncodeResult, capacity: int
    ) -> tuple[CaptureEncodeResult | None, int]:
        """Shed trailing quality layers until the capture fits.

        Greedy and deterministic: each round removes one trailing layer
        from the band whose current coded size is largest (ties break on
        band order).  Bands encoded without layers (``n_quality_layers ==
        1``, or nothing coded) cannot shed below their full payload.
        Layer views are materialized here — only when the budget actually
        binds — because building them costs extra codec work per band
        (see ``BandEncodeResult.materialized_layers``).

        Returns:
            ``(new_result, layers_shed)`` on success, ``(None, 0)`` when
            the capture exceeds ``capacity`` even at one layer per band.
        """
        views = [band.materialized_layers() for band in result.bands]
        kept = [
            len(view) if view is not None else 1 for view in views
        ]

        def band_bytes(index: int) -> int:
            if views[index] is None:
                return result.bands[index].bytes_downlinked
            return views[index][kept[index] - 1].coded_bytes + ALIGNMENT_BYTES

        total = sum(band_bytes(i) for i in range(len(result.bands)))
        while total > capacity:
            sheddable = [
                i
                for i in range(len(result.bands))
                if views[i] is not None and kept[i] > 1
            ]
            if not sheddable:
                return None, 0
            victim = max(sheddable, key=lambda i: (band_bytes(i), -i))
            total -= band_bytes(victim)
            kept[victim] -= 1
            total += band_bytes(victim)
        layers_shed = 0
        new_bands = []
        for index, band in enumerate(result.bands):
            view_tuple = views[index]
            if view_tuple is None or kept[index] == len(view_tuple):
                new_bands.append(band)
                continue
            view = view_tuple[kept[index] - 1]
            layers_shed += len(view_tuple) - kept[index]
            new_bands.append(
                replace(
                    band,
                    bytes_downlinked=view.coded_bytes + ALIGNMENT_BYTES,
                    psnr_downloaded=view.psnr_roi,
                    reconstruction=view.reconstruction,
                    layers=view_tuple[: kept[index]],
                    layers_factory=None,
                    layers_shed=len(view_tuple) - kept[index],
                )
            )
        return replace(result, bands=new_bands), layers_shed


class IngestPhase:
    """Fold the downlinked result into the ground mosaic and score it.

    Args:
        ground: The shared ground segment (mosaic + scoring).
    """

    name = "ingest"

    def __init__(self, ground: GroundSegment) -> None:
        self.ground = ground

    def run(self, event: VisitEvent) -> None:
        if event.result is None or event.capture is None:
            raise PipelineError(
                "IngestPhase requires a completed capture phase"
            )
        event.score = self.ground.ingest(event.result, event.capture)
