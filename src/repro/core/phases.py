"""Event-phase simulation kernel: the simulator loop as composable phases.

The constellation simulation is an event loop over time-ordered visits.
Each visit flows through three independently-schedulable phases, every one
operating on an explicit :class:`VisitEvent` carrier instead of loop-local
variables:

1. :class:`UplinkPhase` — the ground segment spends the uplink budget
   accumulated since the satellite's previous visit on reference updates
   (only for policies that implement :class:`UplinkReceiver`);
2. :class:`CapturePhase` — the sensor produces the capture and the
   satellite's compression policy processes it on board;
3. :class:`IngestPhase` — the ground segment folds the downlinked result
   into the mosaic and scores reconstruction quality.

Per-satellite mutable state lives in :class:`SatelliteState`; what a phase
may touch is exactly what it is handed.  New scenario behaviour (link
outages, alternative contact models, extra bookkeeping) composes as a new
phase rather than an edit to a monolithic loop — the processor/accelerator
decoupling argument of Duet applied to the simulator itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.config import EarthPlusConfig
from repro.core.encoder import CaptureEncodeResult
from repro.core.ground_segment import GroundSegment, ScoreRecord, UplinkPlan
from repro.core.reference import OnboardReferenceCache
from repro.errors import PipelineError
from repro.imagery.sensor import Capture, SatelliteSensor
from repro.orbit.links import FluctuationModel
from repro.orbit.schedule import Visit


class CompressionPolicy(Protocol):
    """What the simulator requires of an on-board compression policy."""

    name: str
    uses_uplink: bool

    def process(
        self, capture: Capture, guaranteed_due: bool
    ) -> CaptureEncodeResult:
        """Compress one capture, returning full byte/tile accounting."""
        ...

    def reference_storage_bytes(self) -> int:
        """Bytes of on-board storage devoted to reference imagery."""
        ...


@runtime_checkable
class UplinkReceiver(Protocol):
    """A policy that can receive reference updates over the uplink.

    The ground segment plans uploads against the cache this method exposes;
    it never reaches into policy internals.  Policies with
    ``uses_uplink = False`` are simply never asked.
    """

    def uplink_cache(self) -> OnboardReferenceCache:
        """The on-board reference cache the ground may write into."""
        ...


@dataclass
class SatelliteState:
    """Mutable per-satellite simulation state.

    Attributes:
        satellite_id: The satellite this state belongs to.
        policy: The satellite's compression policy (owns encoder + cache).
        last_visit_days: Time of the previous visit (uplink accumulation).
        contact_count: Ground contacts consumed so far (fluctuation stream).
        last_guaranteed: Location -> time of the last guaranteed full
            download.  The guarantee is a *constellation-wide* promise per
            location, so every satellite's state shares one mapping
            instance.
    """

    satellite_id: int
    policy: CompressionPolicy
    last_visit_days: float = 0.0
    contact_count: int = 0
    last_guaranteed: dict[str, float] = field(default_factory=dict)


class ConstellationState:
    """Lazily-built states of every satellite in the constellation."""

    def __init__(self, policy_factory) -> None:
        self._factory = policy_factory
        self._last_guaranteed: dict[str, float] = {}
        self.satellites: dict[int, SatelliteState] = {}

    def for_satellite(self, satellite_id: int) -> SatelliteState:
        """This satellite's state, building its policy on first visit."""
        state = self.satellites.get(satellite_id)
        if state is None:
            state = SatelliteState(
                satellite_id=satellite_id,
                policy=self._factory(satellite_id),
                last_guaranteed=self._last_guaranteed,
            )
            self.satellites[satellite_id] = state
        return state


@dataclass
class VisitEvent:
    """One visit's journey through the phase pipeline.

    Phases read what earlier phases produced and write their own outputs;
    the metrics layer observes the completed event.

    Attributes:
        visit: The scheduled visit being simulated.
        state: The observing satellite's state.
        uplink_plan: Applied reference-update plan (None when the policy
            takes no uplink or the budget is zero).
        capture: The sensor output (set by :class:`CapturePhase`).
        result: The on-board processing outcome (set by
            :class:`CapturePhase`).
        score: Ground-side quality assessment (set by :class:`IngestPhase`;
            None for dropped captures).
    """

    visit: Visit
    state: SatelliteState
    uplink_plan: UplinkPlan | None = None
    capture: Capture | None = None
    result: CaptureEncodeResult | None = None
    score: ScoreRecord | None = None


class SimulationPhase(Protocol):
    """One stage of the per-visit pipeline."""

    name: str

    def run(self, event: VisitEvent) -> None:
        """Advance ``event`` through this phase, mutating it in place."""
        ...


class UplinkPhase:
    """Spend the accumulated uplink budget on reference updates.

    Args:
        ground: The shared ground segment (plans and applies updates).
        uplink_bytes_per_contact: Uplink capacity per ground contact.
        contacts_per_day: Ground contacts per satellite per day.
        fluctuation: Optional per-contact bandwidth fluctuation.
        max_accumulation_days: Cap on how much idle uplink time can be
            banked between a satellite's visits.
    """

    name = "uplink"

    def __init__(
        self,
        ground: GroundSegment,
        uplink_bytes_per_contact: int,
        contacts_per_day: int,
        fluctuation: FluctuationModel | None = None,
        max_accumulation_days: float = 2.0,
    ) -> None:
        self.ground = ground
        self.uplink_bytes_per_contact = uplink_bytes_per_contact
        self.contacts_per_day = contacts_per_day
        self.fluctuation = fluctuation
        self.max_accumulation_days = max_accumulation_days

    def run(self, event: VisitEvent) -> None:
        state = event.state
        policy = state.policy
        if policy.uses_uplink and self.uplink_bytes_per_contact > 0:
            if not isinstance(policy, UplinkReceiver):
                raise PipelineError(
                    f"policy {policy.name!r} sets uses_uplink but does not "
                    "implement UplinkReceiver"
                )
            gap = min(
                event.visit.t_days - state.last_visit_days,
                self.max_accumulation_days,
            )
            n_contacts = max(1, int(gap * self.contacts_per_day))
            multiplier = 1.0
            if self.fluctuation is not None:
                multiplier = self.fluctuation.multiplier(
                    state.satellite_id, state.contact_count
                )
            state.contact_count += 1
            budget = int(
                n_contacts * self.uplink_bytes_per_contact * multiplier
            )
            event.uplink_plan = self.ground.plan_uploads(
                policy.uplink_cache(),
                [event.visit.location],
                event.visit.t_days,
                budget,
            )
        state.last_visit_days = event.visit.t_days


class CapturePhase:
    """Capture the scene and run the on-board compression policy.

    Args:
        sensors: Per-location capture sources.
        config: Shared tunables (guaranteed-download period).
    """

    name = "capture"

    def __init__(
        self,
        sensors: dict[str, SatelliteSensor],
        config: EarthPlusConfig,
    ) -> None:
        self.sensors = sensors
        self.config = config

    def run(self, event: VisitEvent) -> None:
        visit = event.visit
        sensor = self.sensors[visit.location]
        event.capture = sensor.capture(visit.satellite_id, visit.t_days)
        due = (
            visit.t_days
            - event.state.last_guaranteed.get(visit.location, -np.inf)
            >= self.config.guaranteed_download_days
        )
        event.result = event.state.policy.process(event.capture, due)
        if event.result.guaranteed:
            event.state.last_guaranteed[visit.location] = visit.t_days


class IngestPhase:
    """Fold the downlinked result into the ground mosaic and score it.

    Args:
        ground: The shared ground segment (mosaic + scoring).
    """

    name = "ingest"

    def __init__(self, ground: GroundSegment) -> None:
        self.ground = ground

    def run(self, event: VisitEvent) -> None:
        if event.result is None or event.capture is None:
            raise PipelineError(
                "IngestPhase requires a completed capture phase"
            )
        event.score = self.ground.ingest(event.result, event.capture)
