"""End-to-end constellation simulation: every number in the paper's §6.

The :class:`ConstellationSimulator` replays a dataset's visit schedule in
time order.  It is a thin driver over the event-phase kernel in
:mod:`repro.core.phases`: each visit becomes a
:class:`~repro.core.phases.VisitEvent` that flows through the uplink,
capture, downlink and ingest phases, and the streaming
:class:`~repro.core.accounting.MetricsAccumulator` folds the completed
events into the :class:`~repro.core.accounting.RunResult`.

The same kernel drives Earth+ and every baseline — policies differ only in
what they choose to download — so comparisons share cloud fields, change
histories, illumination, codec, and scoring.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro import perf
from repro.core.accounting import (
    CaptureRecord,
    MetricCollector,
    MetricsAccumulator,
    RunResult,
)
from repro.core.cloud import CloudDetector
from repro.core.config import EarthPlusConfig
from repro.core.encoder import CaptureEncodeResult, EarthPlusEncoder
from repro.core.ground_segment import GroundSegment
from repro.core.phases import (
    CapturePhase,
    CompressionPolicy,
    ConstellationState,
    DownlinkPhase,
    IngestPhase,
    SimulationPhase,
    UplinkPhase,
    UplinkReceiver,
    VisitEvent,
)
from repro.core.reference import OnboardReferenceCache
from repro.errors import ConfigError
from repro.imagery.bands import Band
from repro.imagery.sensor import Capture, SatelliteSensor
from repro.obs import trace
from repro.orbit.links import FluctuationModel
from repro.orbit.schedule import VisitSchedule

__all__ = [
    "CompressionPolicy",
    "UplinkReceiver",
    "EarthPlusPolicy",
    "CaptureRecord",
    "RunResult",
    "ConstellationSimulator",
]


class EarthPlusPolicy:
    """Earth+ as a simulator policy: encoder + per-satellite cache."""

    uses_uplink = True

    def __init__(
        self,
        config: EarthPlusConfig,
        bands: tuple[Band, ...],
        image_shape: tuple[int, int],
        cloud_detector: CloudDetector,
    ) -> None:
        self.name = "earthplus"
        self.config = config
        lr_tile = max(1, config.tile_size // config.reference_downsample)
        self.cache = OnboardReferenceCache(lr_tile=lr_tile)
        self.encoder = EarthPlusEncoder(
            config=config,
            bands=bands,
            image_shape=image_shape,
            cloud_detector=cloud_detector,
            cache=self.cache,
        )

    def close(self) -> None:
        """Release the encoder's codec resources (worker pools)."""
        self.encoder.close()

    def process(
        self, capture: Capture, guaranteed_due: bool
    ) -> CaptureEncodeResult:
        return self.encoder.process_capture(capture, guaranteed_due)

    def reference_storage_bytes(self) -> int:
        return self.cache.storage_bytes()

    def uplink_cache(self) -> OnboardReferenceCache:
        """The reference cache ground stations may write into (uplink)."""
        return self.cache


class ConstellationSimulator:
    """Replays a visit schedule under one compression policy.

    Args:
        sensors: Per-location capture sources.
        bands: Band set.
        schedule: The constellation's visit schedule.
        image_shape: Capture pixel shape.
        config: Earth+ tunables (tile size, guaranteed period, etc. — also
            honoured by baselines where applicable).
        policy_factory: Called once per satellite id to build its policy.
        ground_segment: Shared ground segment (mosaic + upload planning).
        uplink_bytes_per_contact: Uplink capacity per ground contact.  The
            default mirrors Table 1 (250 kbps x 600 s); experiments scale it
            to our image geometry when studying uplink pressure.
        downlink_bytes_per_contact: Downlink capacity per ground contact.
            The default mirrors Table 1 (200 Mbps x 600 s), which never
            constrains our laptop-scale scenarios — results are then
            byte-identical to an unconstrained run.  Smaller values engage
            quality-layer shedding; None disables the downlink phase
            entirely.
        contacts_per_day: Ground contacts per satellite per day.
        contact_duration_s: Seconds per contact.
        fluctuation: Optional per-contact bandwidth fluctuation (shared by
            both links; each draws from its own stream).
        downlink_fluctuation: Override the downlink's fluctuation model
            (None: share ``fluctuation``).
        max_uplink_accumulation_days: Cap on how much idle contact time
            can be banked between a satellite's visits (both links).
        collectors: Extra pluggable metrics observed per visit; their
            values land in ``RunResult.extra_metrics``.
    """

    def __init__(
        self,
        sensors: dict[str, SatelliteSensor],
        bands: tuple[Band, ...],
        schedule: VisitSchedule,
        image_shape: tuple[int, int],
        config: EarthPlusConfig,
        policy_factory: Callable[[int], CompressionPolicy],
        ground_segment: GroundSegment,
        uplink_bytes_per_contact: int = int(250e3 * 600 / 8),
        downlink_bytes_per_contact: int | None = int(200e6 * 600 / 8),
        contacts_per_day: int = 7,
        contact_duration_s: float = 600.0,
        fluctuation: FluctuationModel | None = None,
        downlink_fluctuation: FluctuationModel | None = None,
        max_uplink_accumulation_days: float = 2.0,
        collectors: Sequence[MetricCollector] = (),
    ) -> None:
        if uplink_bytes_per_contact < 0:
            raise ConfigError("uplink_bytes_per_contact must be >= 0")
        if (
            downlink_bytes_per_contact is not None
            and downlink_bytes_per_contact < 0
        ):
            raise ConfigError("downlink_bytes_per_contact must be >= 0")
        self.sensors = sensors
        self.bands = bands
        self.schedule = schedule
        self.image_shape = image_shape
        self.config = config
        self.policy_factory = policy_factory
        self.ground = ground_segment
        self.uplink_bytes_per_contact = uplink_bytes_per_contact
        self.downlink_bytes_per_contact = downlink_bytes_per_contact
        self.contacts_per_day = contacts_per_day
        self.contact_duration_s = contact_duration_s
        self.fluctuation = fluctuation
        self.downlink_fluctuation = (
            downlink_fluctuation
            if downlink_fluctuation is not None
            else fluctuation
        )
        self.max_uplink_accumulation_days = max_uplink_accumulation_days
        self.collectors = collectors

    def build_phases(self) -> list[SimulationPhase]:
        """The per-visit pipeline: uplink -> capture -> downlink -> ingest."""
        phases: list[SimulationPhase] = [
            UplinkPhase(
                ground=self.ground,
                uplink_bytes_per_contact=self.uplink_bytes_per_contact,
                contacts_per_day=self.contacts_per_day,
                fluctuation=self.fluctuation,
                max_accumulation_days=self.max_uplink_accumulation_days,
            ),
            CapturePhase(sensors=self.sensors, config=self.config),
        ]
        if self.downlink_bytes_per_contact is not None:
            phases.append(
                DownlinkPhase(
                    downlink_bytes_per_contact=self.downlink_bytes_per_contact,
                    contacts_per_day=self.contacts_per_day,
                    fluctuation=self.downlink_fluctuation,
                    max_accumulation_days=self.max_uplink_accumulation_days,
                )
            )
        phases.append(IngestPhase(ground=self.ground))
        return phases

    def run(
        self,
        satellite_ids: Sequence[int] | None = None,
        epoch_sync: Callable | None = None,
    ) -> RunResult:
        """Simulate the schedule (or one shard of it) and aggregate results.

        The global visit ordering is memoized on the schedule, so repeated
        runs over one dataset (policy comparisons, seed sweeps) sort it
        once instead of once per run.  When a profiler is installed (see
        :mod:`repro.perf`) each phase's wall time is recorded under the
        phase's name.

        With ``config.ground_sync_days > 0`` the run is
        epoch-synchronized (see :mod:`repro.core.sharding`): ground-state
        writes journal within each epoch and apply at epoch boundaries in
        canonical visit order.  That mode accepts two sharding hooks:

        Args:
            satellite_ids: Simulate only these satellites' visits (one
                shard of a partitioned run).  The epoch sequence still
                follows the full schedule, so every shard synchronizes
                the same number of times.  None simulates everything.
            epoch_sync: Called at every epoch boundary with
                ``(epoch_index, ingests, marks)`` — this shard's drained
                journal — and returns the merged ``(ingests, marks)`` to
                apply (the sharded runner's all-to-all exchange).  None
                applies the local journal directly; both paths sort
                canonically before applying, which is why a sequential
                synced run equals any sharded one byte-for-byte.

        Raises:
            ConfigError: When sharding hooks are passed without
                ``ground_sync_days`` (the legacy continuous mode has no
                consistent way to partition satellites).
        """
        if self.config.ground_sync_days > 0:
            return self._run_synced(satellite_ids, epoch_sync)
        if satellite_ids is not None or epoch_sync is not None:
            raise ConfigError(
                "sharded execution requires epoch-synchronized ground "
                "state; set config.ground_sync_days > 0 (e.g. 1.0)"
            )
        state = ConstellationState(self.policy_factory)
        phases = self.build_phases()
        metrics = self._build_metrics()
        try:
            for visit in self.schedule.all_visits_sorted():
                self._simulate_visit(visit, state, phases, metrics)
        finally:
            state.close()
        return self._finalize(metrics)

    def _run_synced(
        self,
        satellite_ids: Sequence[int] | None,
        epoch_sync: Callable | None,
    ) -> RunResult:
        """The epoch-synchronized loop: simulate, drain, sync, apply."""
        from repro.core.sharding import (
            GroundJournal,
            apply_marks,
            canonical_ingests,
            canonical_marks,
            group_visits_by_epoch,
        )

        journal = GroundJournal()
        self.ground.enable_sync_journal(journal)
        state = ConstellationState(
            self.policy_factory, guarantee_journal=journal
        )
        phases = self.build_phases()
        metrics = self._build_metrics()
        own = None if satellite_ids is None else frozenset(satellite_ids)
        epochs = group_visits_by_epoch(
            self.schedule.all_visits_sorted(), self.config.ground_sync_days
        )
        try:
            for epoch, visits in epochs:
                trace.set_context(epoch=epoch)
                for visit in visits:
                    if own is not None and visit.satellite_id not in own:
                        continue
                    self._simulate_visit(visit, state, phases, metrics)
                ingests, marks = journal.drain()
                if epoch_sync is not None:
                    ingests, marks = epoch_sync(epoch, ingests, marks)
                else:
                    ingests = canonical_ingests(ingests)
                    marks = canonical_marks(marks)
                with perf.profiled("sync"):
                    self.ground.apply_ingests(ingests)
                    apply_marks(state._last_guaranteed, marks)
        finally:
            trace.clear_context("epoch")
            state.close()
        return self._finalize(metrics)

    def _simulate_visit(self, visit, state, phases, metrics) -> None:
        event = VisitEvent(
            visit=visit, state=state.for_satellite(visit.satellite_id)
        )
        for phase in phases:
            with perf.profiled(phase.name):
                phase.run(event)
        metrics.observe(event)

    def _build_metrics(self) -> MetricsAccumulator:
        return MetricsAccumulator(
            contacts_per_day=self.contacts_per_day,
            contact_duration_s=self.contact_duration_s,
            collectors=self.collectors,
        )

    def _finalize(self, metrics: MetricsAccumulator) -> RunResult:
        return metrics.finalize(
            horizon_days=self.schedule.horizon_days,
            uplink_bytes=self.ground.stats.bytes_sent,
            updates_skipped=self.ground.stats.updates_skipped,
            uplink_stats=self.ground.stats.as_run_stats(),
        )
