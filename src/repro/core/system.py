"""End-to-end constellation simulation: every number in the paper's §6.

The :class:`ConstellationSimulator` replays a dataset's visit schedule in
time order.  For each visit it (1) lets the ground segment uplink reference
updates to the observing satellite within the accumulated uplink budget,
(2) runs the satellite's compression policy over the fresh capture, (3)
ingests the downlinked result into the ground mosaic and scores PSNR, and
(4) accounts bytes on both links plus on-board storage.

The same loop drives Earth+ and every baseline — policies differ only in
what they choose to download — so comparisons share cloud fields, change
histories, illumination, codec, and scoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.codec.metrics import weighted_mean_psnr
from repro.core.config import EarthPlusConfig
from repro.core.encoder import CaptureEncodeResult, EarthPlusEncoder
from repro.core.ground_segment import GroundSegment
from repro.core.reference import OnboardReferenceCache
from repro.core.cloud import CloudDetector
from repro.errors import ConfigError
from repro.imagery.bands import Band
from repro.imagery.sensor import Capture, SatelliteSensor
from repro.orbit.links import FluctuationModel
from repro.orbit.schedule import VisitSchedule


class CompressionPolicy(Protocol):
    """What the simulator requires of an on-board compression policy."""

    name: str
    uses_uplink: bool

    def process(
        self, capture: Capture, guaranteed_due: bool
    ) -> CaptureEncodeResult:
        """Compress one capture, returning full byte/tile accounting."""
        ...

    def reference_storage_bytes(self) -> int:
        """Bytes of on-board storage devoted to reference imagery."""
        ...


class EarthPlusPolicy:
    """Earth+ as a simulator policy: encoder + per-satellite cache."""

    uses_uplink = True

    def __init__(
        self,
        config: EarthPlusConfig,
        bands: tuple[Band, ...],
        image_shape: tuple[int, int],
        cloud_detector: CloudDetector,
    ) -> None:
        self.name = "earthplus"
        self.config = config
        lr_tile = max(1, config.tile_size // config.reference_downsample)
        self.cache = OnboardReferenceCache(lr_tile=lr_tile)
        self.encoder = EarthPlusEncoder(
            config=config,
            bands=bands,
            image_shape=image_shape,
            cloud_detector=cloud_detector,
            cache=self.cache,
        )

    def process(
        self, capture: Capture, guaranteed_due: bool
    ) -> CaptureEncodeResult:
        return self.encoder.process_capture(capture, guaranteed_due)

    def reference_storage_bytes(self) -> int:
        return self.cache.storage_bytes()


@dataclass
class CaptureRecord:
    """Everything remembered about one processed visit.

    Attributes:
        location: Location name.
        satellite_id: Observing satellite.
        t_days: Capture time.
        dropped: Capture discarded for cloud.
        guaranteed: Was a guaranteed full download.
        cloud_coverage: On-board detected cloud fraction.
        psnr: Ground-side reconstruction PSNR (NaN when dropped).
        downloaded_fraction: Mean downloaded-tile fraction over bands.
        bytes_downlinked: Total downlink bytes.
        band_bytes: Per-band downlink bytes.
        band_psnr: Per-band coded-tile PSNR.
        changed_fraction: Mean detector changed fraction over bands.
    """

    location: str
    satellite_id: int
    t_days: float
    dropped: bool
    guaranteed: bool
    cloud_coverage: float
    psnr: float
    downloaded_fraction: float
    bytes_downlinked: int
    band_bytes: dict[str, int] = field(default_factory=dict)
    band_psnr: dict[str, float] = field(default_factory=dict)
    changed_fraction: float = 0.0


@dataclass
class RunResult:
    """Aggregate outcome of one simulation run.

    Attributes:
        policy: Policy name.
        records: Per-visit records in time order.
        downlink_bytes: Total bytes moved down.
        uplink_bytes: Total bytes moved up (reference updates).
        updates_skipped: Reference updates skipped for lack of uplink.
        horizon_days: Simulated duration.
        contacts_per_day: Ground contacts per satellite per day.
        contact_duration_s: Seconds per contact.
        reference_storage_bytes: Peak per-satellite reference storage.
        captured_storage_bytes: Peak per-capture encoded bytes held.
        uplink_stats: Update-level uplink accounting: counts and bytes of
            full vs delta reference updates.
    """

    policy: str
    records: list[CaptureRecord]
    downlink_bytes: int
    uplink_bytes: int
    updates_skipped: int
    horizon_days: float
    contacts_per_day: int
    contact_duration_s: float
    reference_storage_bytes: int
    captured_storage_bytes: int
    uplink_stats: dict[str, int] = field(default_factory=dict)

    def delivered(self) -> list[CaptureRecord]:
        """Records of captures that were actually downlinked."""
        return [r for r in self.records if not r.dropped]

    def mean_psnr(self) -> float:
        """Pooled (MSE-domain) PSNR over delivered captures."""
        values = [r.psnr for r in self.delivered() if np.isfinite(r.psnr)]
        if not values:
            return float("inf")
        return weighted_mean_psnr(values)

    def mean_downloaded_fraction(self) -> float:
        """Mean downloaded-tile fraction over delivered captures."""
        values = [r.downloaded_fraction for r in self.delivered()]
        return float(np.mean(values)) if values else 0.0

    def required_downlink_bps(self) -> float:
        """Average downlink bandwidth demand (the paper's §6.1 metric).

        Total downlinked bytes divided by total contact seconds over the
        horizon, i.e. the sustained rate the constellation must provision.
        """
        contact_seconds = (
            self.horizon_days * self.contacts_per_day * self.contact_duration_s
        )
        if contact_seconds <= 0:
            return 0.0
        return self.downlink_bytes * 8.0 / contact_seconds

    def per_band_bytes(self) -> dict[str, int]:
        """Downlink bytes per band across the run."""
        totals: dict[str, int] = {}
        for record in self.records:
            for band, nbytes in record.band_bytes.items():
                totals[band] = totals.get(band, 0) + nbytes
        return totals

    def per_location_bytes(self) -> dict[str, int]:
        """Downlink bytes per location across the run."""
        totals: dict[str, int] = {}
        for record in self.records:
            totals[record.location] = (
                totals.get(record.location, 0) + record.bytes_downlinked
            )
        return totals

    def per_location_psnr(self) -> dict[str, float]:
        """Pooled PSNR per location."""
        groups: dict[str, list[float]] = {}
        for record in self.delivered():
            if np.isfinite(record.psnr):
                groups.setdefault(record.location, []).append(record.psnr)
        return {
            loc: weighted_mean_psnr(values) for loc, values in groups.items()
        }

    def timeseries(self, location: str) -> list[CaptureRecord]:
        """Delivered records for one location, in time order."""
        return [r for r in self.delivered() if r.location == location]


class ConstellationSimulator:
    """Replays a visit schedule under one compression policy.

    Args:
        sensors: Per-location capture sources.
        bands: Band set.
        schedule: The constellation's visit schedule.
        image_shape: Capture pixel shape.
        config: Earth+ tunables (tile size, guaranteed period, etc. — also
            honoured by baselines where applicable).
        policy_factory: Called once per satellite id to build its policy.
        ground_segment: Shared ground segment (mosaic + upload planning).
        uplink_bytes_per_contact: Uplink capacity per ground contact.  The
            default mirrors Table 1 (250 kbps x 600 s); experiments scale it
            to our image geometry when studying uplink pressure.
        contacts_per_day: Ground contacts per satellite per day.
        contact_duration_s: Seconds per contact.
        fluctuation: Optional per-contact bandwidth fluctuation.
        max_uplink_accumulation_days: Cap on how much idle uplink time can
            be banked between a satellite's visits.
    """

    def __init__(
        self,
        sensors: dict[str, SatelliteSensor],
        bands: tuple[Band, ...],
        schedule: VisitSchedule,
        image_shape: tuple[int, int],
        config: EarthPlusConfig,
        policy_factory: Callable[[int], CompressionPolicy],
        ground_segment: GroundSegment,
        uplink_bytes_per_contact: int = int(250e3 * 600 / 8),
        contacts_per_day: int = 7,
        contact_duration_s: float = 600.0,
        fluctuation: FluctuationModel | None = None,
        max_uplink_accumulation_days: float = 2.0,
    ) -> None:
        if uplink_bytes_per_contact < 0:
            raise ConfigError("uplink_bytes_per_contact must be >= 0")
        self.sensors = sensors
        self.bands = bands
        self.schedule = schedule
        self.image_shape = image_shape
        self.config = config
        self.policy_factory = policy_factory
        self.ground = ground_segment
        self.uplink_bytes_per_contact = uplink_bytes_per_contact
        self.contacts_per_day = contacts_per_day
        self.contact_duration_s = contact_duration_s
        self.fluctuation = fluctuation
        self.max_uplink_accumulation_days = max_uplink_accumulation_days

    def run(self) -> RunResult:
        """Simulate the full schedule and return aggregated results."""
        policies: dict[int, CompressionPolicy] = {}
        last_visit_time: dict[int, float] = {}
        last_guaranteed: dict[str, float] = {}
        contact_counter: dict[int, int] = {}
        records: list[CaptureRecord] = []
        downlink_total = 0
        peak_reference = 0
        peak_captured = 0
        policy_name = ""
        for visit in self.schedule.all_visits_sorted():
            satellite = visit.satellite_id
            if satellite not in policies:
                policies[satellite] = self.policy_factory(satellite)
                last_visit_time[satellite] = 0.0
                contact_counter[satellite] = 0
            policy = policies[satellite]
            policy_name = policy.name
            # --- uplink phase -------------------------------------------------
            if policy.uses_uplink and self.uplink_bytes_per_contact > 0:
                gap = min(
                    visit.t_days - last_visit_time[satellite],
                    self.max_uplink_accumulation_days,
                )
                n_contacts = max(1, int(gap * self.contacts_per_day))
                multiplier = 1.0
                if self.fluctuation is not None:
                    multiplier = self.fluctuation.multiplier(
                        satellite, contact_counter[satellite]
                    )
                contact_counter[satellite] += 1
                budget = int(
                    n_contacts * self.uplink_bytes_per_contact * multiplier
                )
                self.ground.plan_uploads(
                    policies[satellite].cache,  # type: ignore[attr-defined]
                    [visit.location],
                    visit.t_days,
                    budget,
                )
            last_visit_time[satellite] = visit.t_days
            # --- capture + on-board processing --------------------------------
            sensor = self.sensors[visit.location]
            capture = sensor.capture(satellite, visit.t_days)
            due = (
                visit.t_days - last_guaranteed.get(visit.location, -np.inf)
                >= self.config.guaranteed_download_days
            )
            result = policy.process(capture, due)
            if result.guaranteed:
                last_guaranteed[visit.location] = visit.t_days
            # --- ground ingest + scoring --------------------------------------
            score = self.ground.ingest(result, capture)
            downlink_total += result.total_bytes
            peak_reference = max(peak_reference, policy.reference_storage_bytes())
            peak_captured = max(peak_captured, result.onboard_encoded_bytes)
            records.append(
                CaptureRecord(
                    location=visit.location,
                    satellite_id=satellite,
                    t_days=visit.t_days,
                    dropped=result.dropped,
                    guaranteed=result.guaranteed,
                    cloud_coverage=result.cloud_coverage_detected,
                    psnr=score.psnr if score is not None else float("nan"),
                    downloaded_fraction=(
                        score.downloaded_tile_fraction if score is not None else 0.0
                    ),
                    bytes_downlinked=result.total_bytes,
                    band_bytes={
                        b.band: b.bytes_downlinked for b in result.bands
                    },
                    band_psnr={
                        b.band: b.psnr_downloaded for b in result.bands
                    },
                    changed_fraction=(
                        float(
                            np.mean([b.changed_fraction for b in result.bands])
                        )
                        if result.bands
                        else 0.0
                    ),
                )
            )
        return RunResult(
            policy=policy_name,
            records=records,
            downlink_bytes=downlink_total,
            uplink_bytes=self.ground.uplink_bytes_total,
            updates_skipped=self.ground.updates_skipped_total,
            horizon_days=self.schedule.horizon_days,
            contacts_per_day=self.contacts_per_day,
            contact_duration_s=self.contact_duration_s,
            reference_storage_bytes=peak_reference,
            captured_storage_bytes=peak_captured,
            uplink_stats={
                "updates_sent": self.ground.updates_sent_total,
                "full_update_bytes": self.ground.full_update_bytes,
                "full_update_count": self.ground.full_update_count,
                "delta_update_bytes": self.ground.delta_update_bytes,
                "delta_update_count": self.ground.delta_update_count,
            },
        )
