"""Exception hierarchy for the Earth+ reproduction package.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so a
caller who wants to treat "anything this library complained about" uniformly
can catch the single base class.  Sub-hierarchies mirror the subsystem layout:
codec, orbit, imagery, and the Earth+ core each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class CodecError(ReproError):
    """Base class for codec-subsystem failures."""


class BitstreamError(CodecError):
    """A serialized bitstream is malformed, truncated, or version-mismatched."""


class RateControlError(CodecError):
    """A rate target cannot be met (e.g. bpp too small for the header)."""


class OrbitError(ReproError):
    """Base class for constellation/schedule/link failures."""


class LinkBudgetError(OrbitError):
    """An uplink/downlink transfer exceeds the available link capacity."""


class ScheduleError(OrbitError):
    """A visit/contact schedule query is out of the simulated horizon."""


class ImageryError(ReproError):
    """Base class for synthetic-imagery substrate failures."""


class BandError(ImageryError):
    """An unknown band name or a band-shape mismatch."""


class PipelineError(ReproError):
    """The Earth+ on-board pipeline was driven with inconsistent inputs."""


class ScenarioError(ReproError):
    """A scenario in a batch failed; the message names the failing spec.

    Raised by :func:`repro.analysis.scenarios.run_scenarios` wrapping the
    worker's original exception (available as ``__cause__``) so batch
    callers learn *which* spec failed, not just what went wrong.
    """


class StoreError(ReproError):
    """Base class for persistent experiment-store failures."""


class UncacheableSpecError(StoreError):
    """A scenario spec cannot be content-addressed.

    Raised when a spec carries state the canonical serializer cannot
    reproduce from plain data — e.g. an already-built dataset instead of a
    :class:`~repro.analysis.scenarios.DatasetSpec`, or a custom
    fluctuation-model subclass.  Such scenarios still run; they just
    bypass the store.
    """


class LintError(ReproError):
    """The static-analysis engine itself failed (not a lint finding).

    Raised for unusable invocations — an unknown rule passed to
    ``--select``/``--ignore``, a path that does not exist — and for
    internal faults.  The CLI maps it to exit code 2, distinct from
    "findings were reported" (1) and "clean" (0).
    """


class ReferenceError_(ReproError):
    """Reference-store failures (missing reference, shape mismatch, stale delta).

    Named with a trailing underscore to avoid shadowing the ``ReferenceError``
    builtin while keeping the obvious name.
    """
