"""Earth+ reproduction: on-board satellite imagery compression via
constellation-wide reference sharing (ASPLOS 2025).

Quick start::

    from repro import run_policy, sentinel2_dataset, EarthPlusConfig

    dataset = sentinel2_dataset(locations=["A"], bands=["B4"],
                                horizon_days=60)
    result = run_policy(dataset, "earthplus", EarthPlusConfig())
    print(result.required_downlink_bps(), result.mean_psnr())

Subsystems
----------
``repro.imagery``
    Synthetic Earth surface, clouds, illumination, multi-band sensors.
``repro.codec``
    JPEG-2000-style codec: lifting DWT, bit-plane + arithmetic coding,
    ROI, quality layers, and a calibrated fast rate model.
``repro.orbit``
    Constellation visit schedules, ground contacts, link budgets.
``repro.core``
    Earth+ itself: change detection, cloud detectors, reference
    management, the on-board encoder, ground segment, and the end-to-end
    simulator.
``repro.baselines``
    Kodan, SatRoI, and download-everything policies.
``repro.datasets``
    Sentinel-2-like and Planet-like synthetic datasets.
``repro.analysis``
    Experiment runners and table/series formatting for every figure and
    table in the paper's evaluation.
``repro.store``
    Persistent experiment store: content-addressed run cache with
    resumable sweeps and the ``repro query`` CLI behind it.
"""

from repro._version import __version__
from repro.core.config import DovesSpec, EarthPlusConfig
from repro.core.system import ConstellationSimulator, RunResult
from repro.datasets import planet_dataset, sentinel2_dataset
from repro.analysis.experiments import run_policy

__all__ = [
    "__version__",
    "DovesSpec",
    "EarthPlusConfig",
    "ConstellationSimulator",
    "RunResult",
    "planet_dataset",
    "sentinel2_dataset",
    "run_policy",
]
