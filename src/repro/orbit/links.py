"""Uplink/downlink budgets and bandwidth fluctuation.

Table 1's Doves-class numbers: 250 kbps uplink (S-band, weather-stable,
which the paper uses to justify treating it as constant) and 200 Mbps
downlink.  :class:`LinkBudget` converts those into bytes-per-contact, and
:class:`FluctuationModel` provides the seeded per-contact multipliers used
by the bandwidth-variation experiments (§5): the uplink skips reference
updates when capacity drops; the downlink drops quality layers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LinkBudgetError
from repro.imagery.noise import stable_hash


@dataclass(frozen=True)
class LinkBudget:
    """Static link capacities of a satellite.

    Attributes:
        uplink_bps: Ground-to-satellite bit rate (Table 1: 250 kbps).
        downlink_bps: Satellite-to-ground bit rate (Table 1: 200 Mbps).
        contact_duration_s: Usable seconds per ground contact.
    """

    uplink_bps: float = 250e3
    downlink_bps: float = 200e6
    contact_duration_s: float = 600.0

    def __post_init__(self) -> None:
        if self.uplink_bps <= 0 or self.downlink_bps <= 0:
            raise LinkBudgetError("link rates must be positive")
        if self.contact_duration_s <= 0:
            raise LinkBudgetError("contact_duration_s must be positive")

    @property
    def uplink_bytes_per_contact(self) -> int:
        """Whole bytes movable up during one contact."""
        return int(self.uplink_bps * self.contact_duration_s / 8.0)

    @property
    def downlink_bytes_per_contact(self) -> int:
        """Whole bytes movable down during one contact."""
        return int(self.downlink_bps * self.contact_duration_s / 8.0)

    def required_downlink_bps(self, payload_bytes: int) -> float:
        """Average bandwidth needed to move ``payload_bytes`` in one contact.

        This is the paper's downlink metric: data volume per ground contact
        divided by the contact duration (§6.1, "Metrics").
        """
        if payload_bytes < 0:
            raise LinkBudgetError(
                f"payload_bytes must be >= 0, got {payload_bytes}"
            )
        return payload_bytes * 8.0 / self.contact_duration_s


#: Stream tag of the uplink multiplier sequence (the historical default,
#: kept verbatim so existing uplink streams are unchanged).
UPLINK_STREAM = "fluct"

#: Stream tag of the downlink multiplier sequence.  One
#: :class:`FluctuationModel` can degrade both links of a satellite with
#: *independent* per-contact draws — the §5 bandwidth-variation setup —
#: because each link consumes its own tagged stream.
DOWNLINK_STREAM = "fluct-down"


class FluctuationModel:
    """Seeded multiplicative bandwidth fluctuation per contact.

    Multipliers are log-normal with median 1, clipped to
    ``[floor, ceiling]``; severity 0 disables fluctuation entirely.
    The draw for one contact depends only on ``(seed, stream,
    satellite_id, contact_index)``, so streams are deterministic across
    processes and the uplink and downlink of one satellite fluctuate
    independently via their stream tags.

    Args:
        seed: Deterministic stream seed.
        severity: Log-space sigma (0 = constant links).
        floor: Minimum multiplier.
        ceiling: Maximum multiplier.
    """

    def __init__(
        self,
        seed: int = 0,
        severity: float = 0.0,
        floor: float = 0.2,
        ceiling: float = 1.5,
    ) -> None:
        if severity < 0:
            raise LinkBudgetError(f"severity must be >= 0, got {severity}")
        if not 0 < floor <= ceiling:
            raise LinkBudgetError("floor/ceiling must satisfy 0 < floor <= ceiling")
        self.seed = seed
        self.severity = severity
        self.floor = floor
        self.ceiling = ceiling

    def multiplier(
        self,
        satellite_id: int,
        contact_index: int,
        stream: str = UPLINK_STREAM,
    ) -> float:
        """Bandwidth multiplier for one (satellite, contact) pair.

        Args:
            satellite_id: The satellite whose contact this is.
            contact_index: Per-satellite contact counter.
            stream: Which link's stream to draw from
                (:data:`UPLINK_STREAM` or :data:`DOWNLINK_STREAM`).
        """
        if self.severity == 0.0:
            return 1.0
        rng = np.random.default_rng(
            stable_hash(self.seed, stream, satellite_id, contact_index)
        )
        value = float(np.exp(rng.normal(0.0, self.severity)))
        return float(np.clip(value, self.floor, self.ceiling))
