"""Ground-station contact plans.

Each satellite reaches a ground station roughly 7 times per day for ~10
minutes per pass (Table 1, [14, 33]).  Uploads of reference images and
downloads of encoded changes can only happen inside these windows, so the
contact plan is what converts "bytes to move" into "bandwidth required" —
the y-axis of the paper's headline Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OrbitError
from repro.imagery.noise import stable_hash


@dataclass(frozen=True)
class Contact:
    """One ground-station pass.

    Attributes:
        satellite_id: Which satellite is in view.
        t_days: Contact start time, days since epoch.
        duration_s: Usable contact duration in seconds.
    """

    satellite_id: int
    t_days: float
    duration_s: float

    @property
    def end_days(self) -> float:
        """Contact end time in days."""
        return self.t_days + self.duration_s / 86_400.0


class ContactPlan:
    """Deterministic contact timeline for every satellite.

    Args:
        n_satellites: Constellation size.
        contacts_per_day: Ground contacts per satellite per day (Table 1: 7).
        contact_duration_s: Seconds of usable link per contact (Table 1:
            600 s).
        seed: Jitter seed; real passes are not perfectly periodic.
    """

    def __init__(
        self,
        n_satellites: int,
        contacts_per_day: int = 7,
        contact_duration_s: float = 600.0,
        seed: int = 0,
    ) -> None:
        if n_satellites < 1:
            raise OrbitError(f"n_satellites must be >= 1, got {n_satellites}")
        if contacts_per_day < 1:
            raise OrbitError(
                f"contacts_per_day must be >= 1, got {contacts_per_day}"
            )
        if contact_duration_s <= 0:
            raise OrbitError(
                f"contact_duration_s must be positive, got {contact_duration_s}"
            )
        self.n_satellites = n_satellites
        self.contacts_per_day = contacts_per_day
        self.contact_duration_s = contact_duration_s
        self.seed = seed

    def contacts(
        self, satellite_id: int, t0_days: float, t1_days: float
    ) -> list[Contact]:
        """Contacts for ``satellite_id`` with start time in ``[t0, t1)``.

        Args:
            satellite_id: Satellite index (0-based).
            t0_days: Window start.
            t1_days: Window end.

        Returns:
            Time-sorted contacts.

        Raises:
            OrbitError: For unknown satellites or inverted windows.
        """
        if not 0 <= satellite_id < self.n_satellites:
            raise OrbitError(
                f"satellite_id {satellite_id} out of range 0..{self.n_satellites - 1}"
            )
        if t1_days < t0_days:
            raise OrbitError(f"window end {t1_days} precedes start {t0_days}")
        spacing = 1.0 / self.contacts_per_day
        phase_rng = np.random.default_rng(
            stable_hash(self.seed, "contact-phase", satellite_id)
        )
        phase = float(phase_rng.random()) * spacing
        first_index = int(np.floor((t0_days - phase) / spacing))
        out: list[Contact] = []
        index = max(0, first_index)
        while True:
            base_time = phase + index * spacing
            if base_time >= t1_days:
                break
            if base_time >= t0_days:
                jitter_rng = np.random.default_rng(
                    stable_hash(self.seed, "contact-jitter", satellite_id, index)
                )
                jitter = (float(jitter_rng.random()) - 0.5) * 0.1 * spacing
                t_contact = max(0.0, base_time + jitter)
                out.append(
                    Contact(
                        satellite_id=satellite_id,
                        t_days=t_contact,
                        duration_s=self.contact_duration_s,
                    )
                )
            index += 1
        return out

    def contacts_between_visits(
        self, satellite_id: int, visit_gap_days: float
    ) -> float:
        """Expected number of contacts within one visit gap (planning aid)."""
        if visit_gap_days < 0:
            raise OrbitError(f"visit_gap_days must be >= 0, got {visit_gap_days}")
        return visit_gap_days * self.contacts_per_day
