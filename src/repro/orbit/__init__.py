"""Constellation, visit-schedule, ground-contact, and link-budget substrate.

The paper's evaluation needs three orbital facts, all modelled here:

* **visit timing** — a single LEO satellite revisits a location only every
  10-15 days, while a constellation staggers its members' ground tracks so
  the *combined* revisit is near daily (§2.1, §3);
* **ground contacts** — each satellite gets about 7 contacts/day of ~10
  minutes each (Table 1), which bound how many bytes move per day;
* **link budgets** — 250 kbps uplink and 200 Mbps downlink (Table 1), with
  optional fluctuation for the bandwidth-variation experiments (§5).

Schedules are deterministic functions of the constellation seed, standing in
for the TLE-based visit prediction the paper cites (Celestrak [3]).
"""

from repro.orbit.constellation import Satellite, Constellation
from repro.orbit.schedule import Visit, VisitSchedule
from repro.orbit.ground_station import Contact, ContactPlan
from repro.orbit.links import LinkBudget, FluctuationModel

__all__ = [
    "Satellite",
    "Constellation",
    "Visit",
    "VisitSchedule",
    "Contact",
    "ContactPlan",
    "LinkBudget",
    "FluctuationModel",
]
