"""Satellites and constellations: who flies over a location, and when.

A sun-synchronous LEO earth-observation satellite re-images a given location
on a near-fixed cadence (its *revisit period*, 10-15 days for Doves-class
spacecraft, §3).  A constellation staggers members' orbital phases so their
combined coverage revisits roughly every ``period / n_satellites`` days —
this staggering is exactly the freshness pool Earth+ draws references from.

The model is deliberately schedule-level (no SGP4): the paper only consumes
visit times, which are predictable days ahead from TLEs anyway (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OrbitError
from repro.imagery.noise import stable_hash
from repro.orbit.schedule import Visit, VisitSchedule


@dataclass(frozen=True)
class Satellite:
    """One spacecraft of a constellation.

    Attributes:
        satellite_id: Index within the constellation.
        revisit_period_days: Days between successive visits to the same
            location by this satellite alone.
        phase_days: Offset of this satellite's first visit to the reference
            location.
    """

    satellite_id: int
    revisit_period_days: float
    phase_days: float

    def __post_init__(self) -> None:
        if self.revisit_period_days <= 0:
            raise OrbitError(
                f"revisit_period_days must be positive, "
                f"got {self.revisit_period_days}"
            )

    def visit_times(self, horizon_days: float, location_offset: float = 0.0) -> np.ndarray:
        """All visit times to a location within ``[0, horizon_days]``.

        Args:
            horizon_days: Simulation horizon.
            location_offset: Per-location phase shift (different longitudes
                are crossed at different points of the ground-track cycle).

        Returns:
            Sorted float array of visit times in days.
        """
        if horizon_days < 0:
            raise OrbitError(f"horizon_days must be >= 0, got {horizon_days}")
        start = (self.phase_days + location_offset) % self.revisit_period_days
        count = int(np.floor((horizon_days - start) / self.revisit_period_days)) + 1
        if horizon_days < start:
            return np.empty(0, dtype=np.float64)
        return start + self.revisit_period_days * np.arange(max(0, count))


class Constellation:
    """A set of satellites with staggered phases over shared locations.

    Args:
        n_satellites: Constellation size (Doves flew >100; the paper's Planet
            sample contains 48).
        base_revisit_days: Nominal single-satellite revisit period.
        revisit_jitter_days: Half-width of the uniform per-satellite period
            perturbation (real constellations drift apart).
        seed: Seed for period jitter and per-location offsets.
    """

    def __init__(
        self,
        n_satellites: int,
        base_revisit_days: float = 12.0,
        revisit_jitter_days: float = 2.0,
        seed: int = 0,
    ) -> None:
        if n_satellites < 1:
            raise OrbitError(f"n_satellites must be >= 1, got {n_satellites}")
        if base_revisit_days <= 0:
            raise OrbitError(
                f"base_revisit_days must be positive, got {base_revisit_days}"
            )
        if revisit_jitter_days < 0 or revisit_jitter_days >= base_revisit_days:
            raise OrbitError(
                "revisit_jitter_days must be in [0, base_revisit_days), "
                f"got {revisit_jitter_days}"
            )
        self.seed = seed
        rng = np.random.default_rng(stable_hash(seed, "constellation"))
        self.satellites: list[Satellite] = []
        for idx in range(n_satellites):
            period = base_revisit_days + revisit_jitter_days * (
                2.0 * float(rng.random()) - 1.0
            )
            # Even phase staggering plus a little jitter: combined revisit
            # is ~period / n.
            phase = (idx * base_revisit_days / n_satellites) + 0.3 * float(
                rng.random()
            )
            self.satellites.append(
                Satellite(
                    satellite_id=idx,
                    revisit_period_days=period,
                    phase_days=phase % period,
                )
            )

    def __len__(self) -> int:
        return len(self.satellites)

    def location_offset(self, location: str) -> float:
        """Deterministic per-location phase offset in days."""
        rng = np.random.default_rng(stable_hash(self.seed, "locoff", location))
        return float(rng.random()) * 3.0

    def build_schedule(
        self, locations: list[str], horizon_days: float
    ) -> VisitSchedule:
        """Materialize the visit schedule for ``locations`` over a horizon.

        Args:
            locations: Location names to schedule.
            horizon_days: End of the simulated window, in days.

        Returns:
            A queryable :class:`repro.orbit.schedule.VisitSchedule`.
        """
        visits: dict[str, list[Visit]] = {}
        for location in locations:
            offset = self.location_offset(location)
            entries: list[Visit] = []
            for satellite in self.satellites:
                for t_days in satellite.visit_times(horizon_days, offset):
                    entries.append(
                        Visit(
                            t_days=float(t_days),
                            satellite_id=satellite.satellite_id,
                            location=location,
                        )
                    )
            entries.sort(key=lambda v: v.t_days)
            visits[location] = entries
        return VisitSchedule(visits=visits, horizon_days=horizon_days)
