"""Visit schedules: queryable timelines of (location, time, satellite).

A :class:`VisitSchedule` is what the Earth+ ground segment plans against:
which satellite flies over which location when, which visits precede a given
ground contact, and what the single-satellite vs. constellation-wide revisit
gap statistics look like (the inputs to the paper's Figure 5).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleError


@dataclass(frozen=True)
class Visit:
    """One satellite pass over one location.

    Attributes:
        t_days: Visit time in days since the simulation epoch.
        satellite_id: Which constellation member makes the pass.
        location: Location name.
    """

    t_days: float
    satellite_id: int
    location: str


def visit_order_key(visit: Visit) -> tuple[float, str, int]:
    """The canonical total order on visits: ``(time, location, satellite)``.

    Every consumer that needs a reproducible global ordering — the
    simulator's event loop, sharded-run record merging, epoch journal
    replay — sorts by this one key, so a merged multi-shard run interleaves
    events exactly as the sequential kernel does.  Time leads (the
    simulation is causal); location and satellite id break the
    measure-zero ties between distinct passes that share a float
    timestamp.
    """
    return (visit.t_days, visit.location, visit.satellite_id)


@dataclass
class VisitSchedule:
    """All visits for all locations within a horizon.

    Attributes:
        visits: Per-location, time-sorted visit lists.
        horizon_days: End of the scheduled window.
    """

    visits: dict[str, list[Visit]]
    horizon_days: float

    def __post_init__(self) -> None:
        self._sorted_cache: list[Visit] | None = None

    def __getstate__(self):
        """Pickle without the memoized ordering (recomputed on demand)."""
        state = dict(self.__dict__)
        state["_sorted_cache"] = None
        return state

    def locations(self) -> list[str]:
        """Scheduled location names."""
        return list(self.visits)

    def _check_location(self, location: str) -> list[Visit]:
        try:
            return self.visits[location]
        except KeyError:
            known = ", ".join(sorted(self.visits))
            raise ScheduleError(
                f"location {location!r} is not scheduled; known: {known}"
            ) from None

    def visits_in(
        self,
        location: str,
        t0_days: float,
        t1_days: float,
        satellite_id: int | None = None,
    ) -> list[Visit]:
        """Visits to ``location`` with ``t0 <= t < t1``.

        Args:
            location: Location name.
            t0_days: Window start (inclusive).
            t1_days: Window end (exclusive).
            satellite_id: Restrict to one satellite when given.

        Returns:
            Time-sorted visits.
        """
        if t1_days < t0_days:
            raise ScheduleError(
                f"window end {t1_days} precedes start {t0_days}"
            )
        entries = self._check_location(location)
        times = [v.t_days for v in entries]
        lo = bisect.bisect_left(times, t0_days)
        hi = bisect.bisect_left(times, t1_days)
        window = entries[lo:hi]
        if satellite_id is not None:
            window = [v for v in window if v.satellite_id == satellite_id]
        return window

    def next_visit(
        self, location: str, after_days: float, satellite_id: int | None = None
    ) -> Visit | None:
        """First visit to ``location`` strictly after ``after_days``."""
        entries = self._check_location(location)
        times = [v.t_days for v in entries]
        idx = bisect.bisect_right(times, after_days)
        while idx < len(entries):
            visit = entries[idx]
            if satellite_id is None or visit.satellite_id == satellite_id:
                return visit
            idx += 1
        return None

    def revisit_gaps(
        self, location: str, satellite_id: int | None = None
    ) -> np.ndarray:
        """Gaps (days) between consecutive visits to ``location``.

        With ``satellite_id`` given this is the single-satellite revisit
        distribution; without, the constellation-wide one — the two curves
        the paper contrasts in §3/§4.1.
        """
        entries = self._check_location(location)
        if satellite_id is not None:
            entries = [v for v in entries if v.satellite_id == satellite_id]
        times = np.array([v.t_days for v in entries], dtype=np.float64)
        if times.size < 2:
            return np.empty(0, dtype=np.float64)
        return np.diff(times)

    def all_visits_sorted(self) -> list[Visit]:
        """Every visit across locations, globally time-sorted.

        The merged ordering is computed once and memoized: the simulator
        replays it on every run, and scenario sweeps replay the same
        schedule many times over.  Callers must treat the returned list as
        read-only (it is shared), and code that mutates ``visits`` after
        construction — nothing in this repository does — would need to
        call :meth:`invalidate_order`.
        """
        if self._sorted_cache is None:
            merged: list[Visit] = []
            for entries in self.visits.values():
                merged.extend(entries)
            merged.sort(key=visit_order_key)
            self._sorted_cache = merged
        return self._sorted_cache

    def invalidate_order(self) -> None:
        """Drop the memoized global ordering (after mutating ``visits``)."""
        self._sorted_cache = None

    def satellite_ids(self) -> list[int]:
        """Every satellite id appearing in the schedule, ascending."""
        ids = {
            v.satellite_id
            for entries in self.visits.values()
            for v in entries
        }
        return sorted(ids)

    def visit_counts(self) -> dict[int, int]:
        """Number of scheduled visits per satellite id."""
        counts: dict[int, int] = {}
        for entries in self.visits.values():
            for v in entries:
                counts[v.satellite_id] = counts.get(v.satellite_id, 0) + 1
        return counts

    def partition_satellites(self, shards: int) -> list[list[int]]:
        """Deterministic satellite-to-shard assignment for sharded runs.

        Longest-processing-time greedy: satellites are placed heaviest
        visit-count first onto the currently-lightest shard, with all ties
        broken by index, so every process computes the identical
        partition from the same schedule.  The assignment only affects
        load balance, never results — an epoch-synchronized run is
        shard-count-invariant by construction.

        Empty shards are dropped (``shards`` above the satellite count
        degrades gracefully), so the returned list may be shorter than
        requested.  Shard order follows each shard's smallest satellite
        id for a stable, readable numbering.
        """
        if shards < 1:
            raise ScheduleError(f"shards must be >= 1, got {shards}")
        counts = self.visit_counts()
        # Heaviest first; ties by ascending id for determinism.
        order = sorted(counts, key=lambda sid: (-counts[sid], sid))
        loads = [0] * shards
        buckets: list[list[int]] = [[] for _ in range(shards)]
        for sid in order:
            target = min(range(shards), key=lambda i: (loads[i], i))
            buckets[target].append(sid)
            loads[target] += counts[sid]
        filled = [sorted(bucket) for bucket in buckets if bucket]
        filled.sort(key=lambda bucket: bucket[0])
        return filled
