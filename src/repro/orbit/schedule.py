"""Visit schedules: queryable timelines of (location, time, satellite).

A :class:`VisitSchedule` is what the Earth+ ground segment plans against:
which satellite flies over which location when, which visits precede a given
ground contact, and what the single-satellite vs. constellation-wide revisit
gap statistics look like (the inputs to the paper's Figure 5).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleError


@dataclass(frozen=True)
class Visit:
    """One satellite pass over one location.

    Attributes:
        t_days: Visit time in days since the simulation epoch.
        satellite_id: Which constellation member makes the pass.
        location: Location name.
    """

    t_days: float
    satellite_id: int
    location: str


@dataclass
class VisitSchedule:
    """All visits for all locations within a horizon.

    Attributes:
        visits: Per-location, time-sorted visit lists.
        horizon_days: End of the scheduled window.
    """

    visits: dict[str, list[Visit]]
    horizon_days: float

    def __post_init__(self) -> None:
        self._sorted_cache: list[Visit] | None = None

    def __getstate__(self):
        """Pickle without the memoized ordering (recomputed on demand)."""
        state = dict(self.__dict__)
        state["_sorted_cache"] = None
        return state

    def locations(self) -> list[str]:
        """Scheduled location names."""
        return list(self.visits)

    def _check_location(self, location: str) -> list[Visit]:
        try:
            return self.visits[location]
        except KeyError:
            known = ", ".join(sorted(self.visits))
            raise ScheduleError(
                f"location {location!r} is not scheduled; known: {known}"
            ) from None

    def visits_in(
        self,
        location: str,
        t0_days: float,
        t1_days: float,
        satellite_id: int | None = None,
    ) -> list[Visit]:
        """Visits to ``location`` with ``t0 <= t < t1``.

        Args:
            location: Location name.
            t0_days: Window start (inclusive).
            t1_days: Window end (exclusive).
            satellite_id: Restrict to one satellite when given.

        Returns:
            Time-sorted visits.
        """
        if t1_days < t0_days:
            raise ScheduleError(
                f"window end {t1_days} precedes start {t0_days}"
            )
        entries = self._check_location(location)
        times = [v.t_days for v in entries]
        lo = bisect.bisect_left(times, t0_days)
        hi = bisect.bisect_left(times, t1_days)
        window = entries[lo:hi]
        if satellite_id is not None:
            window = [v for v in window if v.satellite_id == satellite_id]
        return window

    def next_visit(
        self, location: str, after_days: float, satellite_id: int | None = None
    ) -> Visit | None:
        """First visit to ``location`` strictly after ``after_days``."""
        entries = self._check_location(location)
        times = [v.t_days for v in entries]
        idx = bisect.bisect_right(times, after_days)
        while idx < len(entries):
            visit = entries[idx]
            if satellite_id is None or visit.satellite_id == satellite_id:
                return visit
            idx += 1
        return None

    def revisit_gaps(
        self, location: str, satellite_id: int | None = None
    ) -> np.ndarray:
        """Gaps (days) between consecutive visits to ``location``.

        With ``satellite_id`` given this is the single-satellite revisit
        distribution; without, the constellation-wide one — the two curves
        the paper contrasts in §3/§4.1.
        """
        entries = self._check_location(location)
        if satellite_id is not None:
            entries = [v for v in entries if v.satellite_id == satellite_id]
        times = np.array([v.t_days for v in entries], dtype=np.float64)
        if times.size < 2:
            return np.empty(0, dtype=np.float64)
        return np.diff(times)

    def all_visits_sorted(self) -> list[Visit]:
        """Every visit across locations, globally time-sorted.

        The merged ordering is computed once and memoized: the simulator
        replays it on every run, and scenario sweeps replay the same
        schedule many times over.  Callers must treat the returned list as
        read-only (it is shared), and code that mutates ``visits`` after
        construction — nothing in this repository does — would need to
        call :meth:`invalidate_order`.
        """
        if self._sorted_cache is None:
            merged: list[Visit] = []
            for entries in self.visits.values():
                merged.extend(entries)
            merged.sort(key=lambda v: v.t_days)
            self._sorted_cache = merged
        return self._sorted_cache

    def invalidate_order(self) -> None:
        """Drop the memoized global ordering (after mutating ``visits``)."""
        self._sorted_cache = None
