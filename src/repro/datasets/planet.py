"""The Planet-like "large constellation" dataset (paper Table 2).

One coastal U.S. location, four Doves bands (RGB + NIR), three months, and
up to 48 satellites.  Its purpose is the constellation-size axis: with many
satellites the freshest cloud-free reference is days old instead of weeks,
which is where Earth+'s constellation-wide sharing pays off (Figures 11b
and 19).  Matching the paper's sampling, the cloud climatology is milder
(the authors filtered to <5 % cloud coverage scenes).
"""

from __future__ import annotations

from repro.datasets.generator import SyntheticDataset, build_dataset
from repro.imagery.bands import PLANET_BANDS, Band
from repro.imagery.earth_model import LocationSpec, TerrainClass
from repro.imagery.noise import stable_hash


def planet_dataset(
    n_satellites: int = 48,
    bands: tuple[Band, ...] | None = None,
    image_shape: tuple[int, int] = (192, 192),
    horizon_days: float = 90.0,
    seed: int = 21,
    clear_probability: float = 0.5,
    location_name: str = "coastal-us",
) -> SyntheticDataset:
    """Build the Planet-like dataset.

    Args:
        n_satellites: Constellation size (paper sample: 48).
        bands: Band subset (default: all 4 Doves bands).
        image_shape: Capture shape (paper location covers 36 km^2).
        horizon_days: Duration (paper: 3 months).
        seed: Dataset seed.
        clear_probability: Clear-capture probability; higher than
            Sentinel-2's because the paper sampled <5 %-cloud scenes.
        location_name: Name of the single location.

    Returns:
        The assembled dataset.
    """
    band_tuple = PLANET_BANDS if bands is None else tuple(bands)
    spec = LocationSpec(
        name=location_name,
        shape=image_shape,
        terrain_mix={
            TerrainClass.COASTAL: 0.45,
            TerrainClass.CITY: 0.3,
            TerrainClass.AGRICULTURE: 0.25,
        },
        seed=stable_hash(seed, "planet", location_name),
        snowy=False,
        activity=1.1,
    )
    return build_dataset(
        name="planet",
        specs=[spec],
        bands=band_tuple,
        n_satellites=n_satellites,
        horizon_days=horizon_days,
        base_revisit_days=12.0,
        seed=stable_hash(seed, "planet-constellation"),
        clear_probability=clear_probability,
    )
