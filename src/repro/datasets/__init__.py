"""Synthetic stand-ins for the paper's two evaluation datasets (Table 2).

* :func:`~repro.datasets.sentinel2.sentinel2_dataset` — the "rich content"
  dataset: 11 Washington-State-like locations (rivers, forests, mountains,
  agriculture, cities; two snowy locations D and H), 13 Sentinel-2 bands,
  a 2-satellite constellation, one year.
* :func:`~repro.datasets.planet.planet_dataset` — the "large constellation"
  dataset: one coastal location, 4 Planet bands, up to 48 satellites, three
  months, low-cloud sampling.

Both return a :class:`~repro.datasets.generator.SyntheticDataset` bundling
sensors, bands, constellation and visit schedule, ready for
:class:`repro.core.system.ConstellationSimulator`.  Sizes (image shape,
location/band subsets, horizon) are parameterized so tests run in seconds
while benches can scale up.
"""

from repro.datasets.generator import SyntheticDataset, build_dataset
from repro.datasets.planet import planet_dataset
from repro.datasets.sentinel2 import sentinel2_dataset, SENTINEL2_LOCATIONS

__all__ = [
    "SyntheticDataset",
    "build_dataset",
    "planet_dataset",
    "sentinel2_dataset",
    "SENTINEL2_LOCATIONS",
]
