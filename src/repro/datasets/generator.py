"""Generic synthetic-dataset assembly.

A :class:`SyntheticDataset` bundles everything a simulation run needs:
per-location Earth models and sensors, the band set, the constellation, and
the materialized visit schedule.  :func:`build_dataset` assembles one from
location specs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.imagery.bands import Band
from repro.imagery.earth_model import EarthModel, LocationSpec
from repro.imagery.sensor import SatelliteSensor
from repro.orbit.constellation import Constellation
from repro.orbit.schedule import VisitSchedule


@dataclass
class SyntheticDataset:
    """A ready-to-simulate dataset.

    Attributes:
        name: Dataset identifier.
        bands: Band set every sensor records.
        image_shape: Capture pixel shape (all locations share it).
        sensors: Per-location capture sources.
        earth_models: Per-location ground-truth models (evaluation oracles).
        constellation: The observing constellation.
        schedule: Materialized visit schedule.
        horizon_days: Simulated duration.
    """

    name: str
    bands: tuple[Band, ...]
    image_shape: tuple[int, int]
    sensors: dict[str, SatelliteSensor]
    earth_models: dict[str, EarthModel]
    constellation: Constellation
    schedule: VisitSchedule
    horizon_days: float

    @property
    def locations(self) -> list[str]:
        """Location names in schedule order."""
        return self.schedule.locations()

    @property
    def n_satellites(self) -> int:
        """Constellation size."""
        return len(self.constellation)

    def describe(self) -> dict[str, object]:
        """Table-2-style summary row."""
        return {
            "dataset": self.name,
            "satellites": self.n_satellites,
            "locations": len(self.locations),
            "bands": len(self.bands),
            "duration_days": self.horizon_days,
            "image_shape": self.image_shape,
        }


def build_dataset(
    name: str,
    specs: list[LocationSpec],
    bands: tuple[Band, ...],
    n_satellites: int,
    horizon_days: float,
    base_revisit_days: float = 12.0,
    seed: int = 0,
    clear_probability: float = 0.22,
    noise_sigma: float = 0.002,
) -> SyntheticDataset:
    """Assemble a dataset from location specs.

    Args:
        name: Dataset identifier.
        specs: Location configurations (shapes must match).
        bands: Band set.
        n_satellites: Constellation size.
        horizon_days: Simulated duration.
        base_revisit_days: Single-satellite revisit period.
        seed: Constellation seed.
        clear_probability: Cloud-model clear-capture probability.
        noise_sigma: Sensor noise level.

    Returns:
        The assembled dataset.

    Raises:
        ConfigError: On empty or shape-mismatched specs.
    """
    if not specs:
        raise ConfigError("need at least one location spec")
    image_shape = specs[0].shape
    if any(spec.shape != image_shape for spec in specs):
        raise ConfigError("all locations must share one image shape")
    from repro.imagery.clouds import CloudModel
    from repro.imagery.noise import stable_hash

    sensors: dict[str, SatelliteSensor] = {}
    earth_models: dict[str, EarthModel] = {}
    for spec in specs:
        earth = EarthModel(spec, bands)
        cloud_model = CloudModel(
            seed=stable_hash(spec.seed, "clouds"),
            shape=image_shape,
            clear_probability=clear_probability,
        )
        sensors[spec.name] = SatelliteSensor(
            earth=earth,
            bands=bands,
            noise_sigma=noise_sigma,
            _cloud_model=cloud_model,
        )
        earth_models[spec.name] = earth
    constellation = Constellation(
        n_satellites=n_satellites,
        base_revisit_days=base_revisit_days,
        seed=seed,
    )
    schedule = constellation.build_schedule(
        [spec.name for spec in specs], horizon_days
    )
    return SyntheticDataset(
        name=name,
        bands=bands,
        image_shape=image_shape,
        sensors=sensors,
        earth_models=earth_models,
        constellation=constellation,
        schedule=schedule,
        horizon_days=horizon_days,
    )
