"""The Sentinel-2-like "rich content" dataset (paper Table 2, Figure 10).

Eleven Washington-State-like locations labelled A-K spanning fluvial
landscapes, agriculture, mountains, forest and city, with two snowy
mountain locations (D and H) whose fluctuating snow albedo defeats
reference-based encoding — reproducing the paper's Figure 14 outliers.
The real constellation has 2 satellites and 13 bands over one year.
"""

from __future__ import annotations

from repro.datasets.generator import SyntheticDataset, build_dataset
from repro.imagery.bands import SENTINEL2_BANDS, Band, get_band
from repro.imagery.earth_model import LocationSpec, TerrainClass
from repro.imagery.noise import stable_hash

#: Terrain mixes of the 11 evaluation locations.  D and H are the snowy
#: mountain sites; activity multipliers make cities churn faster than
#: wilderness, matching the spread of Figure 14's per-location savings.
SENTINEL2_LOCATIONS: dict[str, dict] = {
    "A": {"mix": {TerrainClass.RIVER: 0.35, TerrainClass.FOREST: 0.65},
          "snowy": False, "activity": 0.9},
    "B": {"mix": {TerrainClass.AGRICULTURE: 0.7, TerrainClass.RIVER: 0.3},
          "snowy": False, "activity": 1.2},
    "C": {"mix": {TerrainClass.FOREST: 0.8, TerrainClass.MOUNTAIN: 0.2},
          "snowy": False, "activity": 0.7},
    "D": {"mix": {TerrainClass.MOUNTAIN: 0.75, TerrainClass.FOREST: 0.25},
          "snowy": True, "activity": 0.8},
    "E": {"mix": {TerrainClass.CITY: 0.55, TerrainClass.AGRICULTURE: 0.45},
          "snowy": False, "activity": 1.5},
    "F": {"mix": {TerrainClass.AGRICULTURE: 0.85, TerrainClass.CITY: 0.15},
          "snowy": False, "activity": 1.3},
    "G": {"mix": {TerrainClass.COASTAL: 0.5, TerrainClass.CITY: 0.5},
          "snowy": False, "activity": 1.1},
    "H": {"mix": {TerrainClass.MOUNTAIN: 0.9, TerrainClass.FOREST: 0.1},
          "snowy": True, "activity": 0.7},
    "I": {"mix": {TerrainClass.FOREST: 0.6, TerrainClass.AGRICULTURE: 0.4},
          "snowy": False, "activity": 1.0},
    "J": {"mix": {TerrainClass.RIVER: 0.25, TerrainClass.AGRICULTURE: 0.5,
                  TerrainClass.FOREST: 0.25},
          "snowy": False, "activity": 1.1},
    "K": {"mix": {TerrainClass.CITY: 0.3, TerrainClass.COASTAL: 0.4,
                  TerrainClass.FOREST: 0.3},
          "snowy": False, "activity": 1.0},
}


def sentinel2_dataset(
    locations: list[str] | None = None,
    bands: tuple[Band, ...] | list[str] | None = None,
    image_shape: tuple[int, int] = (256, 256),
    horizon_days: float = 365.0,
    n_satellites: int = 2,
    seed: int = 20,
    clear_probability: float = 0.22,
) -> SyntheticDataset:
    """Build the Sentinel-2-like dataset (optionally scaled down).

    Args:
        locations: Subset of location letters (default: all 11 A-K).
        bands: Band subset as Band objects or names (default: all 13).
        image_shape: Capture shape; the paper downsamples Sentinel-2 4x,
            our default 256x256 preserves the 64-pixel tile geometry at
            laptop scale.
        horizon_days: Duration (paper: 1 year).
        n_satellites: Constellation size (Sentinel-2 flies 2).
        seed: Dataset seed.
        clear_probability: Per-capture probability of a near-clear sky.

    Returns:
        The assembled dataset.
    """
    if locations is None:
        locations = list(SENTINEL2_LOCATIONS)
    if bands is None:
        band_tuple: tuple[Band, ...] = SENTINEL2_BANDS
    elif bands and isinstance(bands[0], str):
        band_tuple = tuple(get_band(name) for name in bands)  # type: ignore[arg-type]
    else:
        band_tuple = tuple(bands)  # type: ignore[arg-type]
    specs = []
    for name in locations:
        info = SENTINEL2_LOCATIONS[name]
        specs.append(
            LocationSpec(
                name=name,
                shape=image_shape,
                terrain_mix=info["mix"],
                seed=stable_hash(seed, "sentinel2", name),
                snowy=info["snowy"],
                activity=info["activity"],
            )
        )
    return build_dataset(
        name="sentinel2",
        specs=specs,
        bands=band_tuple,
        n_satellites=n_satellites,
        horizon_days=horizon_days,
        base_revisit_days=12.0,
        seed=stable_hash(seed, "sentinel2-constellation"),
        clear_probability=clear_probability,
    )
