"""Illumination model: linear gain/offset drift between captures.

The paper (§5, citing Yang & Lo [72]) models illumination's effect on pixel
values as *linear*, which is why Earth+ can align a capture to its reference
with ordinary least squares before differencing.  We reproduce that structure
exactly: every capture carries a multiplicative gain (sun elevation: seasonal
sinusoid plus per-capture jitter) and a small additive offset (path radiance).

Because the effect really is linear, a static scene observed under two
illumination conditions aligns perfectly, giving the zero-false-positive
invariant the test suite checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.imagery.noise import stable_hash


@dataclass(frozen=True)
class IlluminationSample:
    """Illumination condition for one capture.

    Attributes:
        gain: Multiplicative factor applied to surface reflectance.
        offset: Additive offset (atmospheric path radiance).
    """

    gain: float
    offset: float

    def apply(self, surface: np.ndarray) -> np.ndarray:
        """Render ``surface`` under this illumination (clipped to [0, 1])."""
        return np.clip(surface * self.gain + self.offset, 0.0, 1.0)


class IlluminationModel:
    """Generates per-capture illumination conditions for a location.

    The gain follows a seasonal sinusoid (sun elevation at the constellation's
    fixed local overpass time varies over the year) plus bounded per-capture
    jitter from atmospheric conditions; the offset is small and jittered.

    Args:
        seed: Deterministic seed (typically derived from the location seed).
        seasonal_amplitude: Peak-to-mean seasonal gain variation.
        jitter: Half-width of the uniform per-capture gain jitter.
        base_gain: Mean gain.
    """

    def __init__(
        self,
        seed: int,
        seasonal_amplitude: float = 0.12,
        jitter: float = 0.03,
        base_gain: float = 0.9,
    ) -> None:
        if base_gain <= 0:
            raise ValueError(f"base_gain must be positive, got {base_gain}")
        self.seed = seed
        self.seasonal_amplitude = seasonal_amplitude
        self.jitter = jitter
        self.base_gain = base_gain

    def sample(self, t_days: float) -> IlluminationSample:
        """Illumination for a capture at time ``t_days``.

        Deterministic per (seed, capture day): two captures the same day by
        different satellites see slightly different jitter because the
        sub-day fraction enters the seed.
        """
        key = stable_hash(self.seed, "illum", round(t_days * 1e4))
        rng = np.random.default_rng(key)
        gain_jitter = self.jitter * (2.0 * float(rng.random()) - 1.0)
        # Residual path radiance after calibration: small — L1C-style
        # products are already radiometrically corrected, which is also why
        # the paper's linear alignment works at a 0.01 threshold.
        offset = 0.002 + 0.006 * float(rng.random())
        gain = self.expected_gain(t_days) * (1.0 + gain_jitter)
        return IlluminationSample(gain=gain, offset=offset)

    def expected_gain(self, t_days: float) -> float:
        """The deterministic (sun-geometry) component of the gain.

        Ground segments know acquisition geometry exactly (ephemeris), so
        radiometric pipelines divide this component out; only the
        atmospheric jitter is unpredictable.  Earth+'s ground segment uses
        this to anchor mosaic normalization (see
        :meth:`repro.core.ground_segment.GroundSegment`).
        """
        seasonal = self.seasonal_amplitude * math.sin(
            2.0 * math.pi * (t_days - 80.0) / 365.0
        )
        return self.base_gain * (1.0 + seasonal)
