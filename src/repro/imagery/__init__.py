"""Synthetic Earth-observation imagery substrate.

The paper evaluates Earth+ on Sentinel-2 and Planet (Doves) archives.  Those
archives are terabyte-scale and network-gated, so this package implements the
closest synthetic equivalent: a procedural, deterministic Earth-surface model
with the temporal statistics the paper's results depend on —

* slow, spatially sparse terrestrial change (a per-tile Poisson change process
  whose age→changed-fraction curve is calibrated to the paper's Figure 4),
* cloud climatology covering roughly two thirds of captures
  (:mod:`repro.imagery.clouds`),
* capture-to-capture illumination drift that is linear in pixel value
  (:mod:`repro.imagery.illumination`, citing the paper's use of [72]),
* heterogeneous multi-band behaviour (ground vs. air vs. vegetation bands,
  :mod:`repro.imagery.bands`), and
* snow-albedo volatility at snowy locations (the paper's locations D and H).

Everything is seeded and reproducible: the surface observed at ``(location,
band, time)`` is a pure function of the model configuration.
"""

from repro.imagery.bands import (
    Band,
    BandCategory,
    SENTINEL2_BANDS,
    PLANET_BANDS,
    get_band,
)
from repro.imagery.noise import fractal_noise, value_noise, smoothstep
from repro.imagery.events import ChangeEventProcess, TileChangeModel
from repro.imagery.earth_model import EarthModel, LocationSpec, TerrainClass
from repro.imagery.illumination import IlluminationModel, IlluminationSample
from repro.imagery.clouds import CloudModel, CloudSample
from repro.imagery.sensor import Capture, SatelliteSensor

__all__ = [
    "Band",
    "BandCategory",
    "SENTINEL2_BANDS",
    "PLANET_BANDS",
    "get_band",
    "fractal_noise",
    "value_noise",
    "smoothstep",
    "ChangeEventProcess",
    "TileChangeModel",
    "EarthModel",
    "LocationSpec",
    "TerrainClass",
    "IlluminationModel",
    "IlluminationSample",
    "CloudModel",
    "CloudSample",
    "Capture",
    "SatelliteSensor",
]
