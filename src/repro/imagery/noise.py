"""Deterministic procedural noise used by the terrain and cloud generators.

Everything here is a pure function of an integer seed, so the whole synthetic
Earth is reproducible: generating the same location twice yields bit-identical
arrays.  The workhorse is seeded value noise with smooth (Hermite)
interpolation, composed into fractal Brownian motion by
:func:`fractal_noise`.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro import perf
from repro.codec import registry


def smoothstep(t: np.ndarray) -> np.ndarray:
    """Hermite smoothing ``3t^2 - 2t^3`` used for value-noise interpolation.

    Args:
        t: Array of interpolation parameters in ``[0, 1]``.

    Returns:
        Smoothed parameters, same shape as ``t``.
    """
    return t * t * (3.0 - 2.0 * t)


def _lattice_values(seed: int, cells_y: int, cells_x: int) -> np.ndarray:
    """Random values on a (cells_y+1, cells_x+1) integer lattice."""
    rng = np.random.default_rng(seed)
    return rng.random((cells_y + 1, cells_x + 1))


@lru_cache(maxsize=256)
def _interp_geometry(
    height: int, width: int, cells_y: int, cells_x: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Lattice indices and Hermite weights for one (shape, cells) pair.

    Pure function of its arguments; memoized because imagery synthesis
    re-renders the same shapes with thousands of different seeds.  The
    index arrays are flat indices into the raveled ``(cells_y + 1,
    cells_x + 1)`` lattice for the four cell corners.  Returned arrays
    are read-only.
    """
    ys = np.linspace(0.0, cells_y, height, endpoint=False)
    xs = np.linspace(0.0, cells_x, width, endpoint=False)
    y0 = np.minimum(ys.astype(np.int64), cells_y - 1)
    x0 = np.minimum(xs.astype(np.int64), cells_x - 1)
    ty = smoothstep((ys - y0))[:, None]
    tx = smoothstep((xs - x0))[None, :]
    stride = cells_x + 1
    flat00 = y0[:, None] * stride + x0[None, :]
    corners = (flat00, flat00 + 1, flat00 + stride, flat00 + stride + 1)
    for array in corners + (ty, tx):
        array.setflags(write=False)
    return corners, ty, tx


def value_noise(shape: tuple[int, int], cells: int, seed: int) -> np.ndarray:
    """Single-octave value noise over a 2-D grid.

    A coarse lattice of uniform random values is smoothly interpolated up to
    the requested resolution.  Feature size is controlled by ``cells``: the
    image is divided into ``cells`` lattice cells along its longer axis.

    Args:
        shape: Output ``(height, width)``.
        cells: Number of lattice cells along the longer image axis (>= 1).
        seed: Seed for the lattice values.

    Returns:
        Array of shape ``shape`` with values in ``[0, 1]``.
    """
    height, width = shape
    cells = max(1, int(cells))
    longer = max(height, width)
    cells_y = max(1, round(cells * height / longer))
    cells_x = max(1, round(cells * width / longer))
    lattice = _lattice_values(seed, cells_y, cells_x)

    if perf.simulation_fastpath():
        # Flat-index gathers of the four cell corners, with the index
        # geometry memoized per (shape, cells): the same lattice elements
        # the reference np.ix_ path selects, without rebuilding the open
        # mesh per call.
        corners, ty, tx = _interp_geometry(height, width, cells_y, cells_x)
        kernels = registry.kernels()
        if kernels is not None:
            # One native pass: gather + Hermite blend, term-for-term the
            # numpy expression below (bit-identical output).
            return kernels.noise_bilerp(
                lattice, cells_x + 1, corners[0], ty.ravel(), tx.ravel()
            )
        flat = lattice.ravel()
        v00, v01, v10, v11 = (flat[c] for c in corners)
    else:
        ys = np.linspace(0.0, cells_y, height, endpoint=False)
        xs = np.linspace(0.0, cells_x, width, endpoint=False)
        y0 = np.minimum(ys.astype(np.int64), cells_y - 1)
        x0 = np.minimum(xs.astype(np.int64), cells_x - 1)
        ty = smoothstep((ys - y0))[:, None]
        tx = smoothstep((xs - x0))[None, :]
        v00 = lattice[np.ix_(y0, x0)]
        v01 = lattice[np.ix_(y0, x0 + 1)]
        v10 = lattice[np.ix_(y0 + 1, x0)]
        v11 = lattice[np.ix_(y0 + 1, x0 + 1)]

    top = v00 * (1.0 - tx) + v01 * tx
    bottom = v10 * (1.0 - tx) + v11 * tx
    return top * (1.0 - ty) + bottom * ty


def fractal_noise(
    shape: tuple[int, int],
    seed: int,
    octaves: int = 4,
    base_cells: int = 4,
    persistence: float = 0.55,
    lacunarity: float = 2.0,
) -> np.ndarray:
    """Fractal Brownian motion: a sum of value-noise octaves.

    Args:
        shape: Output ``(height, width)``.
        seed: Base seed; each octave derives its own sub-seed from it.
        octaves: Number of octaves to sum (>= 1).
        base_cells: Lattice cells of the first (coarsest) octave.
        persistence: Amplitude decay per octave, in ``(0, 1]``.
        lacunarity: Frequency growth per octave (> 1).

    Returns:
        Array of shape ``shape``, normalized to ``[0, 1]``.
    """
    if octaves < 1:
        raise ValueError(f"octaves must be >= 1, got {octaves}")
    total = np.zeros(shape, dtype=np.float64)
    amplitude = 1.0
    cells = float(base_cells)
    amplitude_sum = 0.0
    for octave in range(octaves):
        octave_seed = (seed * 1_000_003 + octave * 7919) & 0x7FFFFFFF
        total += amplitude * value_noise(shape, int(round(cells)), octave_seed)
        amplitude_sum += amplitude
        amplitude *= persistence
        cells *= lacunarity
    total /= amplitude_sum
    lo, hi = float(total.min()), float(total.max())
    if hi - lo < 1e-12:
        return np.zeros(shape, dtype=np.float64)
    return (total - lo) / (hi - lo)


def seeded_uniform(seed: int, *shape: int) -> np.ndarray:
    """Uniform [0, 1) samples from a derived deterministic stream."""
    return np.random.default_rng(seed).random(shape)


def stable_hash(*parts: int | str) -> int:
    """Combine integers/strings into a stable 63-bit seed.

    Python's builtin ``hash`` is salted per process for strings, so this uses
    an explicit FNV-1a over the repr of the parts to stay reproducible across
    runs and machines.
    """
    acc = 0xCBF29CE484222325
    for part in parts:
        for byte in repr(part).encode("utf-8"):
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc & 0x7FFFFFFFFFFFFFFF
