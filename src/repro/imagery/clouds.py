"""Cloud climatology and per-capture cloud rendering.

Clouds drive two of the paper's key numbers: roughly two thirds of Earth is
cloud-covered at any instant (§3, [10]), which is why the satellite-local
reference age balloons to ~51 days, and why constellation-wide selection
(more chances to catch a clear pass) collapses it to ~4.2 days.

The model has two layers:

* a **coverage process**: per (location, capture time) cloud fraction drawn
  from a mixture calibrated so that clear captures (<1 % cloud) occur with
  probability ``clear_probability`` and the long-run mean coverage is about
  0.6;
* a **mask renderer**: thresholded fractal noise whose threshold is chosen
  by quantile to hit the sampled coverage exactly, giving spatially coherent
  cloud fields rather than pixel noise.

Rendering honours per-band behaviour (:class:`repro.imagery.bands.Band`):
clouds brighten visible bands but read *cold* (dark) in the thermal-proxy
bands, which is the signal the paper's cheap decision-tree detector keys on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.imagery.bands import Band
from repro.imagery.noise import fractal_noise, stable_hash


@dataclass(frozen=True)
class CloudSample:
    """Cloud state for one capture.

    Attributes:
        coverage: Fraction of pixels covered, in [0, 1].
        mask: Boolean cloud mask (True = cloudy pixel).
        thickness: Optical-thickness field in [0, 1] (0 outside the mask).
    """

    coverage: float
    mask: np.ndarray
    thickness: np.ndarray


class CloudModel:
    """Per-capture cloud fields for one location.

    Args:
        seed: Deterministic seed (typically from the location seed).
        shape: Image shape ``(height, width)``.
        clear_probability: Probability a capture is essentially clear
            (coverage below 1 %).  The paper's large-constellation dataset
            filters at <5 % cloud; our default 0.22 yields a constellation
            cloud-free revisit of a few days with ~50 days satellite-local,
            matching Figure 5's contrast.
        mean_cloudy_coverage: Mean coverage of non-clear captures.
    """

    def __init__(
        self,
        seed: int,
        shape: tuple[int, int],
        clear_probability: float = 0.22,
        mean_cloudy_coverage: float = 0.65,
    ) -> None:
        if not 0.0 <= clear_probability <= 1.0:
            raise ValueError(
                f"clear_probability must be in [0,1], got {clear_probability}"
            )
        if not 0.0 < mean_cloudy_coverage <= 1.0:
            raise ValueError(
                "mean_cloudy_coverage must be in (0,1], "
                f"got {mean_cloudy_coverage}"
            )
        self.seed = seed
        self.shape = shape
        self.clear_probability = clear_probability
        self.mean_cloudy_coverage = mean_cloudy_coverage

    def coverage_at(self, t_days: float) -> float:
        """Cloud coverage fraction for a capture at ``t_days``.

        Mixture model: with probability ``clear_probability`` the capture is
        nearly clear (coverage ~ U[0, 0.01]); otherwise coverage follows a
        Beta distribution with the configured mean, skewed towards heavy
        overcast as real climatology is.
        """
        rng = np.random.default_rng(
            stable_hash(self.seed, "coverage", round(t_days * 1e4))
        )
        if rng.random() < self.clear_probability:
            return 0.01 * float(rng.random())
        mean = self.mean_cloudy_coverage
        # Concentration below 1 gives a U-shaped (bimodal) Beta: a capture
        # is usually either mostly clear or solidly overcast, which is how
        # frontal cloud systems actually read at image scale.
        concentration = 0.9
        a = mean * concentration
        b = (1.0 - mean) * concentration
        return float(np.clip(rng.beta(a, b), 0.01, 1.0))

    def sample(self, t_days: float) -> CloudSample:
        """Render the full cloud field for a capture at ``t_days``."""
        coverage = self.coverage_at(t_days)
        # Low-frequency field: at tile scale (hundreds of metres) cloud
        # systems are blobby — an area is either solidly overcast or clear,
        # matching the paper's observation that "when the cloud is present,
        # it often covers most of an image" (§3, footnote 6).
        field = fractal_noise(
            self.shape,
            stable_hash(self.seed, "cloudfield", round(t_days * 1e4)),
            octaves=2,
            base_cells=2,
            persistence=0.4,
        )
        if coverage <= 0.0:
            mask = np.zeros(self.shape, dtype=bool)
            thickness = np.zeros(self.shape, dtype=np.float64)
            return CloudSample(0.0, mask, thickness)
        threshold = float(np.quantile(field, 1.0 - coverage))
        mask = field >= threshold
        thickness = np.zeros(self.shape, dtype=np.float64)
        if mask.any():
            span = max(1e-9, float(field.max()) - threshold)
            thickness[mask] = np.clip((field[mask] - threshold) / span, 0.05, 1.0)
        actual = float(mask.mean())
        return CloudSample(actual, mask, thickness)

    def render_onto(
        self, surface: np.ndarray, band: Band, sample: CloudSample
    ) -> np.ndarray:
        """Composite a cloud sample onto a surface image for one band.

        Visible/air bands blend towards bright cloud tops proportionally to
        optical thickness; cold bands (thermal proxies) blend towards a dark
        "cold" value instead, which is the contrast the cheap on-board
        detector exploits.

        Args:
            surface: Illuminated surface image in [0, 1].
            band: Band being rendered.
            sample: Cloud state from :meth:`sample`.

        Returns:
            New array with clouds composited (input is not modified).
        """
        if not sample.mask.any():
            return surface.copy()
        out = surface.copy()
        # Even optically-thin cloud raises apparent reflectance noticeably;
        # heavy cloud saturates.  The floor keeps thin haze *detectable in
        # principle* while still being the hardest case (the paper's cheap
        # detector intentionally targets only easy heavy clouds).
        alpha = np.where(
            sample.thickness > 0.0,
            np.clip(0.6 + 1.0 * sample.thickness, 0.0, 1.0),
            0.0,
        )
        cloud_value = 0.08 if band.cloud_cold else band.cloud_brightness
        blend = out * (1.0 - alpha) + cloud_value * alpha
        out[sample.mask] = blend[sample.mask]
        return out
