"""Spectral band definitions for the synthetic Sentinel-2 and Planet sensors.

The paper evaluates Earth+ on all 13 Sentinel-2 bands (B1-B12 including B8a)
and on Planet's four bands (RGB + near infrared).  The bands differ in ground
sampling distance and — critically for Earth+ — in how quickly their content
changes between cloud-free revisits (§5, "Handling different bands"):

* *air bands* (B9 water vapour, B10 cirrus, B1 coastal aerosol) observe the
  atmosphere and change little on cloud-free areas, so even a stale reference
  detects few changes and Earth+'s relative advantage is modest;
* *vegetation bands* (B7, B8, B8a red edge / NIR) track chlorophyll, which is
  temperature sensitive, so they churn quickly and fresh references matter
  most;
* *ground bands* (visible B2-B4, SWIR B11-B12) sit in between.

Each :class:`Band` carries a ``change_rate_scale`` multiplier applied to the
location's base tile-change rate, which is what reproduces the per-band
heterogeneity of the paper's Figure 14.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import BandError


class BandCategory(enum.Enum):
    """Coarse functional grouping of spectral bands used by the Earth model."""

    GROUND = "ground"
    VEGETATION = "vegetation"
    AIR = "air"
    INFRARED = "infrared"


@dataclass(frozen=True)
class Band:
    """A single spectral band of the simulated sensor.

    Attributes:
        name: Sentinel-2-style band identifier, e.g. ``"B4"``.
        description: Human-readable band description.
        wavelength_nm: Central wavelength in nanometres.
        gsd_m: Native ground sampling distance in metres.
        category: Functional grouping (ground / vegetation / air / infrared).
        change_rate_scale: Multiplier on the location's base tile-change rate.
            Values below one make the band more static (air bands); values
            above one make it churn faster (vegetation bands).
        cloud_brightness: How strongly cloud raises the band's reflectance;
            visible bands see bright cloud tops, the water-vapour band
            saturates, and thermal-proxy bands instead read *cold*.
        cloud_cold: Whether clouds appear as a strong *negative* signal in
            this band (the thermal-infrared proxy used by the cheap on-board
            decision-tree cloud detector, §5).
    """

    name: str
    description: str
    wavelength_nm: float
    gsd_m: float
    category: BandCategory
    change_rate_scale: float
    cloud_brightness: float
    cloud_cold: bool = False

    @property
    def is_air_band(self) -> bool:
        """True for bands that mostly observe the atmosphere."""
        return self.category is BandCategory.AIR


#: The 13 Sentinel-2 MSI bands, in the order the paper plots them (Figure 14).
SENTINEL2_BANDS: tuple[Band, ...] = (
    Band("B1", "Coastal aerosol", 443.0, 60.0, BandCategory.AIR, 0.45, 0.55),
    Band("B2", "Blue", 490.0, 10.0, BandCategory.GROUND, 1.00, 0.80),
    Band("B3", "Green", 560.0, 10.0, BandCategory.GROUND, 1.00, 0.80),
    Band("B4", "Red", 665.0, 10.0, BandCategory.GROUND, 1.05, 0.80),
    Band("B5", "Vegetation red edge 1", 705.0, 20.0, BandCategory.VEGETATION, 1.25, 0.75),
    Band("B6", "Vegetation red edge 2", 740.0, 20.0, BandCategory.VEGETATION, 1.35, 0.75),
    Band("B7", "Vegetation red edge 3", 783.0, 20.0, BandCategory.VEGETATION, 1.50, 0.75),
    Band("B8", "Near infrared (NIR)", 842.0, 10.0, BandCategory.VEGETATION, 1.50, 0.70),
    Band("B8a", "Narrow NIR", 865.0, 20.0, BandCategory.VEGETATION, 1.45, 0.70),
    Band("B9", "Water vapour", 945.0, 60.0, BandCategory.AIR, 0.30, 0.90),
    Band("B10", "Cirrus (SWIR)", 1375.0, 60.0, BandCategory.AIR, 0.35, 0.95, cloud_cold=True),
    Band("B11", "SWIR 1", 1610.0, 20.0, BandCategory.INFRARED, 0.90, 0.45, cloud_cold=True),
    Band("B12", "SWIR 2", 2190.0, 20.0, BandCategory.INFRARED, 0.90, 0.40, cloud_cold=True),
)

#: Planet Doves bands (PS2 instrument): RGB plus near infrared.
PLANET_BANDS: tuple[Band, ...] = (
    Band("Blue", "Blue", 490.0, 3.7, BandCategory.GROUND, 1.00, 0.80),
    Band("Green", "Green", 565.0, 3.7, BandCategory.GROUND, 1.00, 0.80),
    Band("Red", "Red", 665.0, 3.7, BandCategory.GROUND, 1.05, 0.80),
    Band("NIR", "Near infrared", 865.0, 3.7, BandCategory.VEGETATION, 1.40, 0.70, cloud_cold=True),
)

_BY_NAME: dict[str, Band] = {b.name: b for b in SENTINEL2_BANDS + PLANET_BANDS}


def get_band(name: str) -> Band:
    """Look up a band by name across the Sentinel-2 and Planet tables.

    Args:
        name: Band identifier such as ``"B8a"`` or ``"NIR"``.

    Returns:
        The matching :class:`Band`.

    Raises:
        BandError: If the name is not a known band.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise BandError(f"unknown band {name!r}; known bands: {known}") from None


def band_names(bands: tuple[Band, ...]) -> list[str]:
    """Return the names of ``bands`` in order (convenience for tabulation)."""
    return [b.name for b in bands]
