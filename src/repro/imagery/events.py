"""Terrestrial change process: when and where the ground truly changes.

The paper's core empirical premise (§3, Figure 4) is that terrestrial content
changes *slowly and heterogeneously*: about 15 % of 64x64 tiles change within
10 days of a reference, rising to roughly 45 % at 50 days — a concave curve,
not the exponential saturation a homogeneous per-tile rate would give.  That
concavity comes from rate heterogeneity: farm fields churn weekly while rock
faces are static for years.

We reproduce it with a doubly-stochastic (Cox) process: every tile draws a
change *rate* from a Gamma distribution, then changes at the jump times of a
Poisson process with that rate.  Marginalizing the Gamma gives

    P(tile changed within age d) = 1 - (1 + scale * d) ** (-shape)

which with ``shape = 0.5``, ``scale = 0.04``/day passes through ~15 % at 10
days and ~42 % at 50 days, matching Figure 4's shape.  The per-band
``change_rate_scale`` multiplier (see :mod:`repro.imagery.bands`) and the
per-location activity multiplier scale the same process.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.imagery.noise import stable_hash

#: Default Gamma-shape of the per-tile change-rate distribution.
DEFAULT_RATE_SHAPE = 0.5
#: Default Gamma-scale (per day) of the per-tile change-rate distribution.
DEFAULT_RATE_SCALE = 0.04


def expected_changed_fraction(
    age_days: float,
    shape: float = DEFAULT_RATE_SHAPE,
    scale: float = DEFAULT_RATE_SCALE,
) -> float:
    """Closed-form expected fraction of tiles changed within ``age_days``.

    This is the marginal of the Gamma-Poisson change process and the curve
    the Figure 4 bench compares against.

    Args:
        age_days: Age of the reference image in days (>= 0).
        shape: Gamma shape of the tile-rate distribution.
        scale: Gamma scale of the tile-rate distribution, per day.

    Returns:
        Expected changed fraction in ``[0, 1)``.
    """
    if age_days < 0:
        raise ValueError(f"age_days must be >= 0, got {age_days}")
    return 1.0 - (1.0 + scale * age_days) ** (-shape)


@dataclass(frozen=True)
class ChangeEventProcess:
    """Poisson change process for a single tile with a fixed rate.

    The jump times are a pure function of the seed, so any two observers of
    the same tile agree on its entire history.

    Attributes:
        rate_per_day: Poisson intensity of content changes.
        seed: Deterministic seed for the jump-time stream.
    """

    rate_per_day: float
    seed: int

    def event_count(self, t_days: float) -> int:
        """Number of change events in ``[0, t_days]``.

        Uses inverse-CDF sampling of exponential gaps from a seeded stream,
        so ``event_count`` is monotone in ``t_days`` and reproducible.
        """
        if t_days < 0:
            raise ValueError(f"t_days must be >= 0, got {t_days}")
        if self.rate_per_day <= 0.0:
            return 0
        rng = np.random.default_rng(self.seed)
        elapsed = 0.0
        count = 0
        # Draw gaps in blocks to limit Python-level looping.
        while True:
            gaps = rng.exponential(1.0 / self.rate_per_day, size=16)
            for gap in gaps:
                elapsed += gap
                if elapsed > t_days:
                    return count
                count += 1
            if count > 100_000:  # pathological rate guard
                return count


class TileChangeModel:
    """Per-tile change history for a full location/band grid.

    The model vectorizes the Gamma-Poisson construction: each tile's rate is
    drawn once (deterministically from the location seed), and event *counts*
    up to a query time are computed directly from the seeded Poisson jump
    structure.  The key query is :meth:`version_grid`: an integer per tile
    that increments every time the tile's content changes.  Two times with
    equal versions show identical ground truth for that tile; differing
    versions mean the tile genuinely changed in between.

    Args:
        tiles_shape: Grid shape ``(tiles_y, tiles_x)``.
        seed: Location/band seed.
        rate_shape: Gamma shape for the tile-rate distribution.
        rate_scale: Gamma scale (per day) for the tile-rate distribution.
        rate_multiplier: Extra multiplier (band volatility x location
            activity).
    """

    def __init__(
        self,
        tiles_shape: tuple[int, int],
        seed: int,
        rate_shape: float = DEFAULT_RATE_SHAPE,
        rate_scale: float = DEFAULT_RATE_SCALE,
        rate_multiplier: float = 1.0,
    ) -> None:
        if rate_shape <= 0 or rate_scale <= 0:
            raise ValueError("rate_shape and rate_scale must be positive")
        if rate_multiplier < 0:
            raise ValueError("rate_multiplier must be >= 0")
        self.tiles_shape = tiles_shape
        self.seed = seed
        rng = np.random.default_rng(stable_hash(seed, "tile-rates"))
        self.rates = (
            rng.gamma(rate_shape, rate_scale, size=tiles_shape) * rate_multiplier
        )
        # Independent seed per tile for its jump-time stream.
        self._tile_seeds = np.random.default_rng(
            stable_hash(seed, "tile-seeds")
        ).integers(0, 2**62, size=tiles_shape)

    def version_grid(self, t_days: float) -> np.ndarray:
        """Integer content-version of every tile at time ``t_days``.

        Args:
            t_days: Query time in days since the model epoch (>= 0).

        Returns:
            int64 array of shape ``tiles_shape``; version 0 means "original
            content", and each change event increments the version.
        """
        if t_days < 0:
            raise ValueError(f"t_days must be >= 0, got {t_days}")
        tiles_y, tiles_x = self.tiles_shape
        versions = np.zeros(self.tiles_shape, dtype=np.int64)
        if t_days == 0:
            return versions
        # Vectorized Poisson count is NOT usable: counts at two different
        # times must be consistent samples of one path.  Instead we exploit
        # that a Poisson path's count at time t is determined by its seeded
        # gap stream; tiles are independent so we loop per tile but only for
        # tiles whose rate makes >=1 event plausible (cheap skip for the
        # large static fraction).
        plausible = self.rates * t_days > 1e-9
        ys, xs = np.nonzero(plausible)
        for y, x in zip(ys, xs):
            process = ChangeEventProcess(
                rate_per_day=float(self.rates[y, x]),
                seed=int(self._tile_seeds[y, x]),
            )
            versions[y, x] = process.event_count(t_days)
        return versions

    def changed_between(self, t0_days: float, t1_days: float) -> np.ndarray:
        """Boolean grid: which tiles changed in the interval ``(t0, t1]``.

        Args:
            t0_days: Earlier time (the reference capture time).
            t1_days: Later time (the new capture time).

        Returns:
            Boolean array of shape ``tiles_shape``.
        """
        if t1_days < t0_days:
            raise ValueError(
                f"t1_days ({t1_days}) must be >= t0_days ({t0_days})"
            )
        return self.version_grid(t1_days) != self.version_grid(t0_days)

    def changed_fraction(self, t0_days: float, t1_days: float) -> float:
        """Fraction of tiles changed in ``(t0, t1]`` (Figure 4's y-axis)."""
        return float(self.changed_between(t0_days, t1_days).mean())
