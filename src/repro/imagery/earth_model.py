"""Procedural Earth-surface model: the ground truth that satellites observe.

The model answers one question deterministically: *what does location L look
like in band B at time t?*  Its construction mirrors the content statistics
the paper measures:

* a static **base map** per (location, band): a terrain-class map (river,
  forest, mountain, agriculture, city, coastal) rendered with per-class,
  per-band reflectances plus fractal texture;
* a **change process** (:class:`repro.imagery.events.TileChangeModel`): tiles
  receive new content at Gamma-Poisson jump times, calibrated so the changed
  fraction vs. reference age reproduces the paper's Figure 4;
* **snow dynamics** at snowy locations: a seasonal snow line whose albedo
  fluctuates capture-to-capture, which is exactly why the paper's locations
  D and H defeat reference-based encoding (Figure 14).

The model also exposes the *oracle* change grid (`true_changed_tiles`) that
evaluation code uses to score detection accuracy (Figure 8) without the model
under test being able to see it.
"""

from __future__ import annotations

import enum
import math
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro import perf
from repro.errors import ImageryError
from repro.imagery.bands import Band, BandCategory
from repro.imagery.events import TileChangeModel
from repro.imagery.noise import fractal_noise, stable_hash


class TerrainClass(enum.Enum):
    """Land-cover classes used to synthesize location content (Figure 10)."""

    RIVER = "river"
    FOREST = "forest"
    MOUNTAIN = "mountain"
    AGRICULTURE = "agriculture"
    CITY = "city"
    COASTAL = "coastal"


#: Base reflectance of each terrain class per band category, in [0, 1].
#: Rough magnitudes follow remote-sensing intuition: water is dark everywhere,
#: vegetation is bright in NIR/red-edge, cities are bright in visible, etc.
_CLASS_REFLECTANCE: dict[TerrainClass, dict[BandCategory, float]] = {
    TerrainClass.RIVER: {
        BandCategory.GROUND: 0.08,
        BandCategory.VEGETATION: 0.05,
        BandCategory.AIR: 0.12,
        BandCategory.INFRARED: 0.03,
    },
    TerrainClass.FOREST: {
        BandCategory.GROUND: 0.18,
        BandCategory.VEGETATION: 0.55,
        BandCategory.AIR: 0.15,
        BandCategory.INFRARED: 0.25,
    },
    TerrainClass.MOUNTAIN: {
        BandCategory.GROUND: 0.35,
        BandCategory.VEGETATION: 0.30,
        BandCategory.AIR: 0.18,
        BandCategory.INFRARED: 0.40,
    },
    TerrainClass.AGRICULTURE: {
        BandCategory.GROUND: 0.30,
        BandCategory.VEGETATION: 0.60,
        BandCategory.AIR: 0.16,
        BandCategory.INFRARED: 0.35,
    },
    TerrainClass.CITY: {
        BandCategory.GROUND: 0.45,
        BandCategory.VEGETATION: 0.25,
        BandCategory.AIR: 0.20,
        BandCategory.INFRARED: 0.50,
    },
    TerrainClass.COASTAL: {
        BandCategory.GROUND: 0.22,
        BandCategory.VEGETATION: 0.20,
        BandCategory.AIR: 0.14,
        BandCategory.INFRARED: 0.18,
    },
}

#: Texture amplitude per terrain class (cities are busier than water).
_CLASS_TEXTURE: dict[TerrainClass, float] = {
    TerrainClass.RIVER: 0.02,
    TerrainClass.FOREST: 0.08,
    TerrainClass.MOUNTAIN: 0.14,
    TerrainClass.AGRICULTURE: 0.10,
    TerrainClass.CITY: 0.16,
    TerrainClass.COASTAL: 0.06,
}


@dataclass(frozen=True)
class LocationSpec:
    """Configuration of one simulated geographic location.

    Attributes:
        name: Location identifier (the paper uses letters A-K for Sentinel-2).
        shape: Image shape ``(height, width)`` in pixels at native GSD.
        terrain_mix: Relative weight of each terrain class present.
        seed: Seed controlling all content at this location.
        snowy: Whether the location has a seasonal snow pack whose albedo
            volatility defeats reference-based encoding (paper's D and H).
        activity: Multiplier on the base change rate (cities churn faster
            than wilderness).
        change_cell_px: Edge of the square change-process cell in pixels;
            defaults to 64 to match the paper's tile size.
    """

    name: str
    shape: tuple[int, int] = (256, 256)
    terrain_mix: dict[TerrainClass, float] = field(
        default_factory=lambda: {TerrainClass.FOREST: 1.0}
    )
    seed: int = 0
    snowy: bool = False
    activity: float = 1.0
    change_cell_px: int = 64

    def __post_init__(self) -> None:
        height, width = self.shape
        if height <= 0 or width <= 0:
            raise ImageryError(f"location shape must be positive, got {self.shape}")
        if not self.terrain_mix:
            raise ImageryError("terrain_mix must contain at least one class")
        if any(w < 0 for w in self.terrain_mix.values()):
            raise ImageryError("terrain_mix weights must be non-negative")
        if sum(self.terrain_mix.values()) <= 0:
            raise ImageryError("terrain_mix weights must sum to a positive value")
        if self.change_cell_px <= 0:
            raise ImageryError("change_cell_px must be positive")


def _snow_season_depth(day_of_year: float) -> float:
    """Seasonal snow-pack depth factor in [0, 1], peaking mid-winter.

    Northern-hemisphere winter/spring snow: nonzero roughly November-May,
    peaking around mid-January (day ~15).
    """
    # Cosine bump centred at day 15 with half-width ~105 days.
    phase = math.cos(2.0 * math.pi * (day_of_year - 15.0) / 365.0)
    return max(0.0, (phase - 0.15) / 0.85)


class EarthModel:
    """Deterministic ground-truth imagery for one location.

    Args:
        spec: The location configuration.
        bands: Bands this model can render.

    The heavy per-band static structure (class map, base reflectance, texture)
    is computed lazily and cached, so repeated captures of the same location
    cost only the change-version query plus patch blending.
    """

    def __init__(self, spec: LocationSpec, bands: tuple[Band, ...]) -> None:
        self.spec = spec
        self.bands = bands
        self._band_index = {band.name: band for band in bands}
        height, width = spec.shape
        cell = spec.change_cell_px
        self.tiles_shape = (
            (height + cell - 1) // cell,
            (width + cell - 1) // cell,
        )
        self._base_cache: dict[str, np.ndarray] = {}
        self._change_models: dict[str, TileChangeModel] = {}
        self._class_map_cache: np.ndarray | None = None
        self._elevation_cache: np.ndarray | None = None
        # Warm-state caches (fast path only; see ground_truth).  Composed
        # pre-snow surfaces are keyed by the change-version grid, rendered
        # change patches by their seed — both pure functions of their keys.
        self._surface_cache: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._patch_cache: OrderedDict[int, tuple[np.ndarray, float]] = (
            OrderedDict()
        )
        self._snow_texture_cache: dict[str, np.ndarray] = {}

    #: Bound on cached composed surfaces per model (LRU).  Consecutive
    #: captures usually share a version grid, so a handful of entries
    #: already absorbs nearly all recomposition.
    _SURFACE_CACHE_MAX = 24
    #: Bound on cached rendered change patches per model (LRU).
    _PATCH_CACHE_MAX = 512

    def __getstate__(self):
        """Pickle without warm-state caches (worker tasks start cold)."""
        state = dict(self.__dict__)
        state["_surface_cache"] = OrderedDict()
        state["_patch_cache"] = OrderedDict()
        state["_snow_texture_cache"] = {}
        return state

    # ------------------------------------------------------------------
    # Static structure
    # ------------------------------------------------------------------
    def class_map(self) -> np.ndarray:
        """Integer terrain-class map of shape ``spec.shape``.

        Classes are assigned by thresholding a smooth noise field according
        to the location's terrain-mix weights, which yields spatially
        contiguous regions rather than salt-and-pepper classes.
        """
        if self._class_map_cache is not None:
            return self._class_map_cache
        spec = self.spec
        field_noise = fractal_noise(
            spec.shape, stable_hash(spec.seed, "classmap"), octaves=3, base_cells=3
        )
        classes = sorted(spec.terrain_mix, key=lambda c: c.value)
        weights = np.array([spec.terrain_mix[c] for c in classes], dtype=np.float64)
        cum = np.cumsum(weights) / weights.sum()
        class_map = np.zeros(spec.shape, dtype=np.int8)
        lower = 0.0
        for idx, upper in enumerate(cum):
            mask = (field_noise >= lower) & (field_noise <= upper + 1e-12)
            class_map[mask] = idx
            lower = upper
        self._class_map_cache = class_map
        self._class_list = classes
        return class_map

    def elevation(self) -> np.ndarray:
        """Pseudo-elevation field in [0, 1]; drives the snow line."""
        if self._elevation_cache is None:
            self._elevation_cache = fractal_noise(
                self.spec.shape,
                stable_hash(self.spec.seed, "elevation"),
                octaves=4,
                base_cells=2,
            )
        return self._elevation_cache

    def base_map(self, band_name: str) -> np.ndarray:
        """Static (time-zero) surface for ``band_name``, values in [0, 1]."""
        if band_name in self._base_cache:
            return self._base_cache[band_name]
        band = self._get_band(band_name)
        class_map = self.class_map()
        classes = self._class_list
        base = np.zeros(self.spec.shape, dtype=np.float64)
        texture_amp = np.zeros(self.spec.shape, dtype=np.float64)
        for idx, terrain in enumerate(classes):
            mask = class_map == idx
            base[mask] = _CLASS_REFLECTANCE[terrain][band.category]
            texture_amp[mask] = _CLASS_TEXTURE[terrain]
        texture = fractal_noise(
            self.spec.shape,
            stable_hash(self.spec.seed, "texture", band.name),
            octaves=5,
            base_cells=6,
        )
        surface = np.clip(base + texture_amp * (texture - 0.5) * 2.0, 0.0, 1.0)
        self._base_cache[band_name] = surface
        return surface

    # ------------------------------------------------------------------
    # Temporal dynamics
    # ------------------------------------------------------------------
    def change_model(self, band_name: str) -> TileChangeModel:
        """The Gamma-Poisson change process for ``band_name``."""
        if band_name not in self._change_models:
            band = self._get_band(band_name)
            self._change_models[band_name] = TileChangeModel(
                tiles_shape=self.tiles_shape,
                seed=stable_hash(self.spec.seed, "changes", band.name),
                rate_multiplier=band.change_rate_scale * self.spec.activity,
            )
        return self._change_models[band_name]

    def snow_mask(self, t_days: float) -> np.ndarray:
        """Boolean snow-cover mask at time ``t_days`` (all-False if not snowy)."""
        if not self.spec.snowy:
            return np.zeros(self.spec.shape, dtype=bool)
        depth = _snow_season_depth(t_days % 365.0)
        if depth <= 0.0:
            return np.zeros(self.spec.shape, dtype=bool)
        # Deeper season -> snow line descends to lower elevations.
        threshold = 1.0 - 0.75 * depth
        return self.elevation() >= threshold

    def _snow_albedo(self, t_days: float) -> float:
        """Per-day snow albedo; fluctuates because snow ages and dirties."""
        day = int(math.floor(t_days))
        rng = np.random.default_rng(stable_hash(self.spec.seed, "albedo", day))
        return 0.60 + 0.35 * float(rng.random())

    def ground_truth(self, band_name: str, t_days: float) -> np.ndarray:
        """The true surface for ``band_name`` at ``t_days`` (values in [0,1]).

        Composition order: static base map, then content-change patches (one
        re-synthesized patch per change event), then snow cover.

        Args:
            band_name: Which spectral band to render.
            t_days: Days since the model epoch (>= 0).

        Returns:
            float64 array of shape ``spec.shape``.
        """
        if t_days < 0:
            raise ImageryError(f"t_days must be >= 0, got {t_days}")
        band = self._get_band(band_name)
        versions = self.change_model(band_name).version_grid(t_days)
        if perf.simulation_fastpath():
            # Warm state: the pre-snow composition is a pure function of
            # the change-version grid, which only moves at jump times —
            # consecutive captures (and repeated scenario runs over the
            # same dataset) hit the cache instead of re-blending every
            # historical change patch.
            key = (band.name, versions.tobytes())
            cached = self._surface_cache.get(key)
            if cached is None:
                cached = self._compose_surface(band, versions)
                cached.setflags(write=False)
                self._surface_cache[key] = cached
                while len(self._surface_cache) > self._SURFACE_CACHE_MAX:
                    self._surface_cache.popitem(last=False)
            else:
                self._surface_cache.move_to_end(key)
            surface = cached.copy()
        else:
            surface = self._compose_surface(band, versions)
        snow = self.snow_mask(t_days)
        if snow.any():
            albedo = self._snow_albedo(t_days)
            snow_texture = self._snow_texture(band.name)
            snow_value = np.clip(albedo * (0.85 + 0.3 * (snow_texture - 0.5)), 0.0, 1.0)
            surface[snow] = snow_value[snow]
        return surface

    def _compose_surface(self, band: Band, versions: np.ndarray) -> np.ndarray:
        """Base map plus every active change patch (no snow)."""
        surface = self.base_map(band.name).copy()
        cell = self.spec.change_cell_px
        height, width = self.spec.shape
        for ty, tx in zip(*np.nonzero(versions)):
            version = int(versions[ty, tx])
            y0, x0 = ty * cell, tx * cell
            y1, x1 = min(y0 + cell, height), min(x0 + cell, width)
            patch_shape = (y1 - y0, x1 - x0)
            patch_seed = stable_hash(
                self.spec.seed, "patch", band.name, int(ty), int(tx), version
            )
            patch, amplitude = self._change_patch(patch_seed, patch_shape)
            blended = surface[y0:y1, x0:x1] + amplitude * (patch - 0.5)
            surface[y0:y1, x0:x1] = np.clip(blended, 0.0, 1.0)
        return surface

    def _change_patch(
        self, patch_seed: int, patch_shape: tuple[int, int]
    ) -> tuple[np.ndarray, float]:
        """One rendered change patch and its blend amplitude.

        Terrestrial change perturbs content around its local value
        (harvest, construction, flooding) — it does not replace a tile
        with unrelated imagery.  Amplitudes are chosen so a changed
        tile's mean absolute difference (~0.03-0.08) clears the
        paper's theta = 0.01 decisively while leaving global image
        statistics (and thus the illumination fit) intact.

        Pure function of ``(patch_seed, patch_shape)``; memoized on the
        fast path so recomposition after a new change event does not
        re-render every older patch.
        """
        if perf.simulation_fastpath():
            cached = self._patch_cache.get(patch_seed)
            if cached is not None:
                self._patch_cache.move_to_end(patch_seed)
                return cached
        patch = fractal_noise(patch_shape, patch_seed, octaves=3, base_cells=3)
        rng = np.random.default_rng(patch_seed)
        amplitude = 0.10 + 0.20 * rng.random()
        if perf.simulation_fastpath():
            patch.setflags(write=False)
            self._patch_cache[patch_seed] = (patch, amplitude)
            while len(self._patch_cache) > self._PATCH_CACHE_MAX:
                self._patch_cache.popitem(last=False)
        return patch, amplitude

    def _snow_texture(self, band_name: str) -> np.ndarray:
        """Static per-band snow texture (pure function of seeds).

        Cached on the fast path; re-rendered per call on the reference
        path, as the original code did.
        """
        if not perf.simulation_fastpath():
            return fractal_noise(
                self.spec.shape,
                stable_hash(self.spec.seed, "snowtex", band_name),
                octaves=3,
                base_cells=8,
            )
        cached = self._snow_texture_cache.get(band_name)
        if cached is None:
            cached = fractal_noise(
                self.spec.shape,
                stable_hash(self.spec.seed, "snowtex", band_name),
                octaves=3,
                base_cells=8,
            )
            cached.setflags(write=False)
            self._snow_texture_cache[band_name] = cached
        return cached

    def true_changed_tiles(
        self, band_name: str, t0_days: float, t1_days: float
    ) -> np.ndarray:
        """Oracle: which change cells genuinely differ between two times.

        A cell counts as changed if the Gamma-Poisson process fired in the
        interval or if snow cover/albedo differs between the two times (snow
        is a real content change — the paper's snowy locations download those
        tiles every visit).

        Args:
            band_name: Band to query.
            t0_days: Reference time.
            t1_days: Capture time (>= t0_days).

        Returns:
            Boolean array of shape ``tiles_shape``.
        """
        changed = self.change_model(band_name).changed_between(t0_days, t1_days)
        if self.spec.snowy:
            snow0 = self.snow_mask(t0_days)
            snow1 = self.snow_mask(t1_days)
            snow_pixels = snow0 | snow1
            if snow_pixels.any() and (
                int(math.floor(t0_days)) != int(math.floor(t1_days))
                or not np.array_equal(snow0, snow1)
            ):
                changed = changed | self._any_pixel_per_cell(snow_pixels)
        return changed

    def _any_pixel_per_cell(self, pixel_mask: np.ndarray) -> np.ndarray:
        """Reduce a pixel mask to a per-change-cell any() grid."""
        cell = self.spec.change_cell_px
        tiles_y, tiles_x = self.tiles_shape
        out = np.zeros(self.tiles_shape, dtype=bool)
        for ty in range(tiles_y):
            for tx in range(tiles_x):
                block = pixel_mask[
                    ty * cell : (ty + 1) * cell, tx * cell : (tx + 1) * cell
                ]
                out[ty, tx] = bool(block.any())
        return out

    def _get_band(self, band_name: str) -> Band:
        try:
            return self._band_index[band_name]
        except KeyError:
            known = ", ".join(sorted(self._band_index))
            raise ImageryError(
                f"band {band_name!r} not configured for location "
                f"{self.spec.name!r}; available: {known}"
            ) from None
