"""Satellite sensor model: turns ground truth into observed captures.

A :class:`Capture` is what one satellite records over one location on one
pass: per-band pixel arrays composed as

    observed = clouds( illumination( ground_truth ) ) + sensor noise

plus the metadata evaluation code needs (true cloud mask, illumination
sample, capture time, satellite id).  The pipeline under test only sees the
pixel arrays; the truth fields are for scoring.
"""

from __future__ import annotations

import os
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro import perf
from repro.errors import ImageryError
from repro.imagery.bands import Band
from repro.imagery.clouds import CloudModel, CloudSample
from repro.imagery.earth_model import EarthModel
from repro.imagery.illumination import IlluminationModel, IlluminationSample
from repro.imagery.noise import stable_hash

# (raw env string -> parsed bytes) per variable: re-parse only when the
# variable changes, keeping the per-capture cost at one dict lookup
# (the same pattern as perf._FASTPATH_ENV_CACHE).
# repro: allow(RPR005): pure parse memo — the value is a deterministic function of the key, so independently-warmed worker copies can never disagree
_BUDGET_MEMO: dict[tuple[str, str | None], int] = {}


def _mb_budget(name: str, default: float) -> int:
    """Read a ``REPRO_*_MB`` byte budget at call time.

    Historically these were read once at import, which silently ignored
    variables exported after ``import repro`` — the same class of bug
    :func:`repro.perf.simulation_fastpath` had (sensor.py is a
    registered accessor module for its two cache budgets; see
    ``repro.lint.rules.envflags``).

    Raises:
        ValueError: For a set value that is not a number.
    """
    raw = os.environ.get(name)
    memo_key = (name, raw)
    cached = _BUDGET_MEMO.get(memo_key)
    if cached is not None:
        return cached
    if raw is None or raw.strip() == "":
        value = int(default * 1e6)
    else:
        try:
            value = int(float(raw) * 1e6)
        except ValueError:
            raise ValueError(
                f"{name}={raw!r} is not a megabyte count"
            ) from None
    _BUDGET_MEMO[memo_key] = value
    return value


def capture_cache_bytes() -> int:
    """Byte budget per sensor for the warm-state capture cache (fast path).

    A capture is deterministic in (satellite, time), so repeated scenario
    runs over one dataset — e.g. comparing three policies on the same
    schedule — re-observe identical captures; caching them removes the
    dominant imagery-synthesis cost from every run after the first.
    ``REPRO_CAPTURE_CACHE_MB`` (default 64) sizes it, read at call time.
    """
    return _mb_budget("REPRO_CAPTURE_CACHE_MB", 64.0)


def capture_cache_total_bytes() -> int:
    """Process-wide capture-cache ceiling across all live sensors.

    Bounds many-location datasets that would otherwise multiply the
    per-sensor budget without bound.  ``REPRO_CAPTURE_CACHE_TOTAL_MB``
    (default 512) sizes it, read at call time.
    """
    return _mb_budget("REPRO_CAPTURE_CACHE_TOTAL_MB", 512.0)

#: Live sensors with non-empty caches, keyed by id (weak values: garbage-
#: collected datasets drop out, releasing their share of the global budget
#: automatically; a WeakValueDictionary is used because the dataclass'
#: generated __eq__ makes instances unhashable, ruling out a WeakSet).
# repro: allow(RPR005): per-process cache bookkeeping by design — caches are excluded from pickling (__getstate__), so worker copies start empty and only ever track that worker's own sensors
_CACHING_SENSORS: "weakref.WeakValueDictionary[int, SatelliteSensor]" = (
    weakref.WeakValueDictionary()
)


def _global_capture_cache_bytes() -> int:
    """Bytes currently held by all live sensors' capture caches."""
    return sum(
        sensor._capture_cache_bytes for sensor in _CACHING_SENSORS.values()
    )


def _enforce_global_capture_budget() -> None:
    """Evict oldest entries of the largest caches until under the ceiling.

    Reclaims from whichever sensor holds the most (a hoarding sensor that
    is no longer visited gives its share back), rather than punishing the
    sensor that happens to be inserting.
    """
    total = _global_capture_cache_bytes()
    ceiling = capture_cache_total_bytes()
    while total > ceiling:
        victim = max(
            _CACHING_SENSORS.values(),
            key=lambda sensor: sensor._capture_cache_bytes,
            default=None,
        )
        if victim is None or not victim._capture_cache:
            break
        _, evicted = victim._capture_cache.popitem(last=False)
        freed = victim._capture_nbytes(evicted)
        victim._capture_cache_bytes -= freed
        total -= freed


@dataclass
class Capture:
    """One multi-band observation of a location by one satellite.

    Attributes:
        location: Location name.
        satellite_id: Index of the observing satellite in its constellation.
        t_days: Capture time in days since the simulation epoch.
        pixels: Mapping band name -> observed image in [0, 1].
        bands: The band definitions, in capture order.
        cloud: The true cloud state (evaluation-only oracle).
        illumination: The true illumination sample (evaluation-only oracle).
    """

    location: str
    satellite_id: int
    t_days: float
    pixels: dict[str, np.ndarray]
    bands: tuple[Band, ...]
    cloud: CloudSample
    illumination: IlluminationSample

    @property
    def shape(self) -> tuple[int, int]:
        """Pixel shape of the capture (all bands share it)."""
        first = next(iter(self.pixels.values()))
        return first.shape  # type: ignore[return-value]

    @property
    def cloud_coverage(self) -> float:
        """True fraction of cloudy pixels (oracle)."""
        return self.cloud.coverage

    def band_names(self) -> list[str]:
        """Band names present in this capture, in order."""
        return [b.name for b in self.bands]


@dataclass
class SatelliteSensor:
    """Renders captures for a (location, constellation) pair.

    Args:
        earth: The ground-truth model for the location.
        bands: Bands the sensor records.
        noise_sigma: Std-dev of additive Gaussian sensor noise.  The paper
            notes raw-sensor artefacts are absent from public datasets, so
            the default is small; set to 0 for noise-free analytic tests.
    """

    earth: EarthModel
    bands: tuple[Band, ...]
    noise_sigma: float = 0.002
    _cloud_model: CloudModel | None = field(default=None, repr=False)
    _illum_model: IlluminationModel | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.noise_sigma < 0:
            raise ImageryError(
                f"noise_sigma must be >= 0, got {self.noise_sigma}"
            )
        if self._cloud_model is None:
            self._cloud_model = CloudModel(
                seed=stable_hash(self.earth.spec.seed, "clouds"),
                shape=self.earth.spec.shape,
            )
        if self._illum_model is None:
            self._illum_model = IlluminationModel(
                seed=stable_hash(self.earth.spec.seed, "illumination"),
            )
        self._capture_cache: OrderedDict[tuple, Capture] = OrderedDict()
        self._capture_cache_bytes = 0

    def __getstate__(self):
        """Pickle without the capture cache (worker tasks start cold)."""
        state = dict(self.__dict__)
        state["_capture_cache"] = OrderedDict()
        state["_capture_cache_bytes"] = 0
        return state

    @property
    def cloud_model(self) -> CloudModel:
        """The cloud climatology used by this sensor."""
        assert self._cloud_model is not None
        return self._cloud_model

    @property
    def illumination_model(self) -> IlluminationModel:
        """The illumination process used by this sensor."""
        assert self._illum_model is not None
        return self._illum_model

    def capture(self, satellite_id: int, t_days: float) -> Capture:
        """Record one capture of the location at ``t_days``.

        Cloud and illumination are shared across bands of the same capture
        (one atmosphere per pass), while sensor noise is independent per
        band.

        Captures are deterministic in ``(satellite_id, t_days)``, so on
        the simulation fast path they are memoized (bounded by a per-
        sensor byte budget, ``REPRO_CAPTURE_CACHE_MB``); cached pixel
        arrays are returned read-only and shared between callers.

        Args:
            satellite_id: Observing satellite index (enters the noise seed).
            t_days: Capture time in days (>= 0).

        Returns:
            A fully-populated :class:`Capture`.
        """
        if t_days < 0:
            raise ImageryError(f"t_days must be >= 0, got {t_days}")
        cache_budget = capture_cache_bytes()
        use_cache = perf.simulation_fastpath() and cache_budget > 0
        # Raw-float key: replayed schedules pass bit-identical times, and
        # quantizing would let two nearby-but-distinct capture times
        # silently collide onto one rendered capture.
        key = (satellite_id, t_days)
        if use_cache:
            cached = self._capture_cache.get(key)
            if cached is not None:
                self._capture_cache.move_to_end(key)
                return cached
        with perf.profiled("imagery"):
            result = self._render_capture(satellite_id, t_days)
        if use_cache:
            for array in self._capture_arrays(result):
                array.setflags(write=False)
            _CACHING_SENSORS[id(self)] = self
            self._capture_cache[key] = result
            self._capture_cache_bytes += self._capture_nbytes(result)
            # Per-sensor budget first, then the process-wide ceiling so
            # datasets with many locations stay bounded.
            while (
                self._capture_cache_bytes > cache_budget
                and len(self._capture_cache) > 1
            ):
                _, evicted = self._capture_cache.popitem(last=False)
                self._capture_cache_bytes -= self._capture_nbytes(evicted)
            _enforce_global_capture_budget()
        return result

    @staticmethod
    def _capture_arrays(capture: Capture) -> list[np.ndarray]:
        """Every array a cached capture shares with its consumers."""
        return list(capture.pixels.values()) + [
            capture.cloud.mask,
            capture.cloud.thickness,
        ]

    @classmethod
    def _capture_nbytes(cls, capture: Capture) -> int:
        """Cache footprint of one capture (pixels + cloud truth fields)."""
        return sum(array.nbytes for array in cls._capture_arrays(capture))

    def _render_capture(self, satellite_id: int, t_days: float) -> Capture:
        """Synthesize the capture (the original uncached path)."""
        cloud = self.cloud_model.sample(t_days)
        illumination = self.illumination_model.sample(t_days)
        pixels: dict[str, np.ndarray] = {}
        for band in self.bands:
            surface = self.earth.ground_truth(band.name, t_days)
            lit = illumination.apply(surface)
            observed = self.cloud_model.render_onto(lit, band, cloud)
            if self.noise_sigma > 0:
                rng = np.random.default_rng(
                    stable_hash(
                        self.earth.spec.seed,
                        "sensor-noise",
                        band.name,
                        satellite_id,
                        round(t_days * 1e4),
                    )
                )
                observed = observed + rng.normal(
                    0.0, self.noise_sigma, size=observed.shape
                )
            pixels[band.name] = np.clip(observed, 0.0, 1.0)
        return Capture(
            location=self.earth.spec.name,
            satellite_id=satellite_id,
            t_days=t_days,
            pixels=pixels,
            bands=self.bands,
            cloud=cloud,
            illumination=illumination,
        )
