"""Satellite sensor model: turns ground truth into observed captures.

A :class:`Capture` is what one satellite records over one location on one
pass: per-band pixel arrays composed as

    observed = clouds( illumination( ground_truth ) ) + sensor noise

plus the metadata evaluation code needs (true cloud mask, illumination
sample, capture time, satellite id).  The pipeline under test only sees the
pixel arrays; the truth fields are for scoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ImageryError
from repro.imagery.bands import Band
from repro.imagery.clouds import CloudModel, CloudSample
from repro.imagery.earth_model import EarthModel
from repro.imagery.illumination import IlluminationModel, IlluminationSample
from repro.imagery.noise import stable_hash


@dataclass
class Capture:
    """One multi-band observation of a location by one satellite.

    Attributes:
        location: Location name.
        satellite_id: Index of the observing satellite in its constellation.
        t_days: Capture time in days since the simulation epoch.
        pixels: Mapping band name -> observed image in [0, 1].
        bands: The band definitions, in capture order.
        cloud: The true cloud state (evaluation-only oracle).
        illumination: The true illumination sample (evaluation-only oracle).
    """

    location: str
    satellite_id: int
    t_days: float
    pixels: dict[str, np.ndarray]
    bands: tuple[Band, ...]
    cloud: CloudSample
    illumination: IlluminationSample

    @property
    def shape(self) -> tuple[int, int]:
        """Pixel shape of the capture (all bands share it)."""
        first = next(iter(self.pixels.values()))
        return first.shape  # type: ignore[return-value]

    @property
    def cloud_coverage(self) -> float:
        """True fraction of cloudy pixels (oracle)."""
        return self.cloud.coverage

    def band_names(self) -> list[str]:
        """Band names present in this capture, in order."""
        return [b.name for b in self.bands]


@dataclass
class SatelliteSensor:
    """Renders captures for a (location, constellation) pair.

    Args:
        earth: The ground-truth model for the location.
        bands: Bands the sensor records.
        noise_sigma: Std-dev of additive Gaussian sensor noise.  The paper
            notes raw-sensor artefacts are absent from public datasets, so
            the default is small; set to 0 for noise-free analytic tests.
    """

    earth: EarthModel
    bands: tuple[Band, ...]
    noise_sigma: float = 0.002
    _cloud_model: CloudModel | None = field(default=None, repr=False)
    _illum_model: IlluminationModel | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.noise_sigma < 0:
            raise ImageryError(
                f"noise_sigma must be >= 0, got {self.noise_sigma}"
            )
        if self._cloud_model is None:
            self._cloud_model = CloudModel(
                seed=stable_hash(self.earth.spec.seed, "clouds"),
                shape=self.earth.spec.shape,
            )
        if self._illum_model is None:
            self._illum_model = IlluminationModel(
                seed=stable_hash(self.earth.spec.seed, "illumination"),
            )

    @property
    def cloud_model(self) -> CloudModel:
        """The cloud climatology used by this sensor."""
        assert self._cloud_model is not None
        return self._cloud_model

    @property
    def illumination_model(self) -> IlluminationModel:
        """The illumination process used by this sensor."""
        assert self._illum_model is not None
        return self._illum_model

    def capture(self, satellite_id: int, t_days: float) -> Capture:
        """Record one capture of the location at ``t_days``.

        Cloud and illumination are shared across bands of the same capture
        (one atmosphere per pass), while sensor noise is independent per
        band.

        Args:
            satellite_id: Observing satellite index (enters the noise seed).
            t_days: Capture time in days (>= 0).

        Returns:
            A fully-populated :class:`Capture`.
        """
        if t_days < 0:
            raise ImageryError(f"t_days must be >= 0, got {t_days}")
        cloud = self.cloud_model.sample(t_days)
        illumination = self.illumination_model.sample(t_days)
        pixels: dict[str, np.ndarray] = {}
        for band in self.bands:
            surface = self.earth.ground_truth(band.name, t_days)
            lit = illumination.apply(surface)
            observed = self.cloud_model.render_onto(lit, band, cloud)
            if self.noise_sigma > 0:
                rng = np.random.default_rng(
                    stable_hash(
                        self.earth.spec.seed,
                        "sensor-noise",
                        band.name,
                        satellite_id,
                        round(t_days * 1e4),
                    )
                )
                observed = observed + rng.normal(
                    0.0, self.noise_sigma, size=observed.shape
                )
            pixels[band.name] = np.clip(observed, 0.0, 1.0)
        return Capture(
            location=self.earth.spec.name,
            satellite_id=satellite_id,
            t_days=t_days,
            pixels=pixels,
            bands=self.bands,
            cloud=cloud,
            illumination=illumination,
        )
