"""Version information for the Earth+ reproduction package."""

__version__ = "1.0.0"
