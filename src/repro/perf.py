"""Simulation fast-path switch and lightweight kernel profiling.

Two small, dependency-free facilities the whole simulation stack shares:

* **The fast-path switch.**  Every performance layer added on top of the
  reference simulation — vectorized DWT lifting, the batched tile pipeline
  in the rate model and encoder, warm-state imagery/capture caches — is
  differential-tested to produce byte-identical results, and every one of
  them checks :func:`simulation_fastpath` so the original reference code
  paths stay runnable.  Disable via ``REPRO_SIM_FASTPATH=0`` or
  :func:`set_simulation_fastpath`; tests use :func:`fastpath_disabled` to
  compare both paths in one process.

* **Environment switches.**  :func:`env_flag` (and the lower-level
  :func:`parse_flag`) is the one parser every boolean ``REPRO_*``
  variable goes through, so ``off``/``FALSE``/``no`` disable a switch
  exactly like ``0`` everywhere.

* **The profiler.**  :func:`enable_profiler` installs a process-wide
  :class:`SimProfiler`; instrumented sections (simulation phases, DWT,
  codec/rate model, change-detection scoring, imagery synthesis) record
  wall time into it via :func:`profiled`.  When no profiler is installed
  the instrumentation is a near-zero-cost fast return, so hot kernels can
  stay instrumented unconditionally.  :func:`profiled` is a compatibility
  shim over :func:`repro.obs.trace.span`, so the same call sites feed the
  trace timeline (``--trace``) when a tracer is enabled.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager

#: Accepted spellings for boolean ``REPRO_*`` environment switches.
_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off", ""})


def parse_flag(value: str) -> bool | None:
    """Parse one boolean-switch spelling, case-insensitively.

    Returns True/False for a recognized spelling (``1/true/yes/on`` vs
    ``0/false/no/off`` or empty), or None when ``value`` is not a boolean
    word at all — callers with path-or-flag variables (``REPRO_STORE``)
    use None to mean "treat it as a path".
    """
    word = value.strip().lower()
    if word in _TRUE_WORDS:
        return True
    if word in _FALSE_WORDS:
        return False
    return None


def env_flag(name: str, default: bool) -> bool:
    """Read a boolean ``REPRO_*`` environment switch.

    The single parser every repro on/off switch goes through, so
    ``FALSE``/``off``/``no`` disable exactly like ``0`` (historically
    only ``0/false/no`` were recognized and ``FALSE`` silently enabled).

    Args:
        name: Environment variable name.
        default: Value when the variable is unset.

    Raises:
        ValueError: For a set value that is not a recognized boolean
            spelling — loud beats silently enabling.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    flag = parse_flag(raw)
    if flag is None:
        raise ValueError(
            f"{name}={raw!r} is not a boolean switch; expected one of "
            f"{sorted(_TRUE_WORDS)} or {sorted(_FALSE_WORDS - {''})}"
        )
    return flag


def _env_flag_lenient(name: str, default: bool) -> bool:
    """Import-time variant of :func:`env_flag`: warn-and-default on garbage.

    Raising at import would brick every ``repro`` entry point (even
    ``--help``) over an unrelated shell export; commands that never
    consult the switch must still run.
    """
    try:
        return env_flag(name, default)
    except ValueError as exc:
        warnings.warn(f"{exc}; using the default ({default})", stacklevel=2)
        return default


# Explicit programmatic override for the fast-path switch.  None means "no
# override": simulation_fastpath() follows $REPRO_SIM_FASTPATH at call time
# (like sim_shards), so exporting the variable after import works.  The
# switch used to be read once at import, which silently ignored later
# exports — the opposite of the sharding switch's documented behavior.
_FASTPATH_OVERRIDE: "bool | None" = None

# (raw env string, parsed value): re-parse only when the variable changes,
# keeping the per-call cost of the hot dispatchers at one dict lookup.
_FASTPATH_ENV_CACHE: "tuple[str | None, bool] | None" = None


def sim_shards() -> int:
    """Default shard count for single-scenario sharding (``REPRO_SIM_SHARDS``).

    Read at call time (not import time) so tests and notebooks can flip
    the variable per run.  The shard count is engine configuration — it
    never changes results (see :mod:`repro.core.sharding`) — so callers
    that omit an explicit ``shards=`` pick this up transparently.

    Returns:
        The configured shard count (>= 1); 1 (sequential) when unset.

    Raises:
        ValueError: For a set value that is not a positive integer.
    """
    raw = os.environ.get("REPRO_SIM_SHARDS")
    if raw is None or raw.strip() == "":
        return 1
    try:
        shards = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SIM_SHARDS={raw!r} is not an integer shard count"
        ) from None
    if shards < 1:
        raise ValueError(f"REPRO_SIM_SHARDS must be >= 1, got {shards}")
    return shards


def sim_workers() -> int:
    """Default sweep worker-pool size (``REPRO_SIM_WORKERS``).

    Read at call time (not import time), matching :func:`sim_shards`.
    The pool size is pure scheduling topology — the sweep scheduler
    (see :mod:`repro.analysis.scheduler`) produces byte-identical
    results at any value — so callers that omit an explicit
    ``max_workers=`` pick this up transparently.

    Returns:
        The configured worker count (>= 1); 1 (sequential) when unset.

    Raises:
        ValueError: For a set value that is not a positive integer.
    """
    raw = os.environ.get("REPRO_SIM_WORKERS")
    if raw is None or raw.strip() == "":
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SIM_WORKERS={raw!r} is not an integer worker count"
        ) from None
    if workers < 1:
        raise ValueError(f"REPRO_SIM_WORKERS must be >= 1, got {workers}")
    return workers


def simulation_fastpath() -> bool:
    """Whether the vectorized/batched/cached simulation paths are active.

    Honors ``REPRO_SIM_FASTPATH`` at call time — exporting it after
    import works, matching :func:`sim_shards` — unless
    :func:`set_simulation_fastpath` (or the ``fastpath_*`` context
    managers) has installed an explicit override, which wins until
    cleared with :func:`clear_simulation_fastpath`.
    """
    if _FASTPATH_OVERRIDE is not None:
        return _FASTPATH_OVERRIDE
    global _FASTPATH_ENV_CACHE
    raw = os.environ.get("REPRO_SIM_FASTPATH")
    cache = _FASTPATH_ENV_CACHE
    if cache is not None and cache[0] == raw:
        return cache[1]
    value = _env_flag_lenient("REPRO_SIM_FASTPATH", True)
    _FASTPATH_ENV_CACHE = (raw, value)
    return value


def set_simulation_fastpath(enabled: bool) -> None:
    """Globally override the simulation fast-path switch.

    The override beats the environment until
    :func:`clear_simulation_fastpath` removes it.
    """
    global _FASTPATH_OVERRIDE
    _FASTPATH_OVERRIDE = bool(enabled)


def clear_simulation_fastpath() -> None:
    """Drop any explicit override; follow the environment again."""
    global _FASTPATH_OVERRIDE
    _FASTPATH_OVERRIDE = None


@contextmanager
def fastpath_disabled():
    """Run a block on the reference (pre-fast-path) implementations."""
    global _FASTPATH_OVERRIDE
    previous = _FASTPATH_OVERRIDE
    _FASTPATH_OVERRIDE = False
    try:
        yield
    finally:
        _FASTPATH_OVERRIDE = previous


@contextmanager
def fastpath_enabled():
    """Run a block with the fast path forced on (symmetry for tests)."""
    global _FASTPATH_OVERRIDE
    previous = _FASTPATH_OVERRIDE
    _FASTPATH_OVERRIDE = True
    try:
        yield
    finally:
        _FASTPATH_OVERRIDE = previous


class SimProfiler:
    """Accumulates wall-clock time per named section.

    Sections are flat (no nesting semantics): a section's time is the sum
    of every ``profiled(name)`` span that ran while this profiler was
    installed.  Phase sections (``uplink``/``capture``/``ingest``) tile the
    simulation loop; kernel sections (``dwt``/``codec``/``scoring``/
    ``imagery``) run *inside* phases, so kernel times are a breakdown of
    where phase time goes, not an additional cost.
    """

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    @classmethod
    def identity(cls) -> "SimProfiler":
        """The merge unit: an empty profiler."""
        return cls()

    @classmethod
    def from_rows(cls, rows) -> "SimProfiler":
        """Rebuild a profiler from :meth:`rows` output (worker partials)."""
        profiler = cls()
        for row in rows:
            name = row["section"]
            profiler.seconds[name] = (
                profiler.seconds.get(name, 0.0) + row["seconds"]
            )
            profiler.calls[name] = profiler.calls.get(name, 0) + row["calls"]
        return profiler

    def merge(self, other: "SimProfiler") -> "SimProfiler":
        """Pointwise sum of section times and call counts.

        Associative with :meth:`identity` as the unit (section times are
        float sums, so associativity is approximate, like
        ``RunResult.merge``): per-shard/per-worker profiles fold into
        one sweep-wide table in any grouping.
        """
        merged = SimProfiler()
        merged.seconds = dict(self.seconds)
        merged.calls = dict(self.calls)
        for name, seconds in other.seconds.items():
            merged.seconds[name] = merged.seconds.get(name, 0.0) + seconds
        for name, calls in other.calls.items():
            merged.calls[name] = merged.calls.get(name, 0) + calls
        return merged

    def add(self, name: str, seconds: float) -> None:
        """Record one span of ``seconds`` against section ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + 1

    def rows(self) -> list[dict]:
        """Per-section summary rows, longest-running first."""
        return [
            {
                "section": name,
                "seconds": round(self.seconds[name], 6),
                "calls": self.calls[name],
            }
            for name in sorted(
                self.seconds, key=lambda n: self.seconds[n], reverse=True
            )
        ]


_PROFILER: SimProfiler | None = None


def enable_profiler() -> SimProfiler:
    """Install (and return) a fresh process-wide profiler."""
    global _PROFILER
    _PROFILER = SimProfiler()
    return _PROFILER


def disable_profiler() -> None:
    """Remove the installed profiler (instrumentation returns to no-op)."""
    global _PROFILER
    _PROFILER = None


def active_profiler() -> SimProfiler | None:
    """The installed profiler, if any."""
    return _PROFILER


# Lazily-bound repro.obs.trace.span: perf must stay importable by obs
# (obs.trace reads _PROFILER directly), so the import runs on first use,
# not at module load — there is no cycle at import time.
_SPAN = None


def profiled(name: str):
    """Time a block against section ``name`` when a profiler is installed.

    Compatibility shim over :func:`repro.obs.trace.span`: every
    pre-existing ``profiled(...)`` call site now also emits a trace span
    when a tracer is enabled, while keeping the historical near-zero-cost
    fast return when neither facility is installed.
    """
    global _SPAN
    if _SPAN is None:
        from repro.obs.trace import span as _SPAN  # noqa: PLW0603
    return _SPAN(name)
