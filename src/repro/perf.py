"""Simulation fast-path switch and lightweight kernel profiling.

Two small, dependency-free facilities the whole simulation stack shares:

* **The fast-path switch.**  Every performance layer added on top of the
  reference simulation — vectorized DWT lifting, the batched tile pipeline
  in the rate model and encoder, warm-state imagery/capture caches — is
  differential-tested to produce byte-identical results, and every one of
  them checks :func:`simulation_fastpath` so the original reference code
  paths stay runnable.  Disable via ``REPRO_SIM_FASTPATH=0`` or
  :func:`set_simulation_fastpath`; tests use :func:`fastpath_disabled` to
  compare both paths in one process.

* **The profiler.**  :func:`enable_profiler` installs a process-wide
  :class:`SimProfiler`; instrumented sections (simulation phases, DWT,
  codec/rate model, change-detection scoring, imagery synthesis) record
  wall time into it via :func:`profiled`.  When no profiler is installed
  the instrumentation is a near-zero-cost fast return, so hot kernels can
  stay instrumented unconditionally.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

_FASTPATH = os.environ.get("REPRO_SIM_FASTPATH", "1") not in ("0", "false", "no")


def simulation_fastpath() -> bool:
    """Whether the vectorized/batched/cached simulation paths are active."""
    return _FASTPATH


def set_simulation_fastpath(enabled: bool) -> None:
    """Globally enable or disable the simulation fast path."""
    global _FASTPATH
    _FASTPATH = bool(enabled)


@contextmanager
def fastpath_disabled():
    """Run a block on the reference (pre-fast-path) implementations."""
    previous = _FASTPATH
    set_simulation_fastpath(False)
    try:
        yield
    finally:
        set_simulation_fastpath(previous)


@contextmanager
def fastpath_enabled():
    """Run a block with the fast path forced on (symmetry for tests)."""
    previous = _FASTPATH
    set_simulation_fastpath(True)
    try:
        yield
    finally:
        set_simulation_fastpath(previous)


class SimProfiler:
    """Accumulates wall-clock time per named section.

    Sections are flat (no nesting semantics): a section's time is the sum
    of every ``profiled(name)`` span that ran while this profiler was
    installed.  Phase sections (``uplink``/``capture``/``ingest``) tile the
    simulation loop; kernel sections (``dwt``/``codec``/``scoring``/
    ``imagery``) run *inside* phases, so kernel times are a breakdown of
    where phase time goes, not an additional cost.
    """

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def add(self, name: str, seconds: float) -> None:
        """Record one span of ``seconds`` against section ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + 1

    def rows(self) -> list[dict]:
        """Per-section summary rows, longest-running first."""
        return [
            {
                "section": name,
                "seconds": round(self.seconds[name], 6),
                "calls": self.calls[name],
            }
            for name in sorted(
                self.seconds, key=lambda n: self.seconds[n], reverse=True
            )
        ]


_PROFILER: SimProfiler | None = None


def enable_profiler() -> SimProfiler:
    """Install (and return) a fresh process-wide profiler."""
    global _PROFILER
    _PROFILER = SimProfiler()
    return _PROFILER


def disable_profiler() -> None:
    """Remove the installed profiler (instrumentation returns to no-op)."""
    global _PROFILER
    _PROFILER = None


def active_profiler() -> SimProfiler | None:
    """The installed profiler, if any."""
    return _PROFILER


@contextmanager
def profiled(name: str):
    """Time a block against section ``name`` when a profiler is installed."""
    profiler = _PROFILER
    if profiler is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        profiler.add(name, time.perf_counter() - start)
