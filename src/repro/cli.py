"""Command-line interface: run simulations and experiments from a shell.

Usage::

    python -m repro run --dataset sentinel2 --policy earthplus --gamma 0.3
    python -m repro compare --dataset planet --satellites 16
    python -m repro calibrate --band B4
    python -m repro specs

Every command prints plain-text tables (and CD/series plots where useful);
all options have small laptop-friendly defaults.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import POLICY_NAMES, run_policy
from repro.analysis.tables import format_table
from repro.core.config import EarthPlusConfig
from repro.datasets.planet import planet_dataset
from repro.datasets.sentinel2 import SENTINEL2_LOCATIONS, sentinel2_dataset


def _build_dataset(args: argparse.Namespace):
    if args.dataset == "sentinel2":
        locations = (
            args.locations.split(",") if args.locations else ["A", "B"]
        )
        bands = args.bands.split(",") if args.bands else ["B4", "B11"]
        return sentinel2_dataset(
            locations=locations,
            bands=bands,
            horizon_days=args.days,
            image_shape=(args.size, args.size),
        )
    return planet_dataset(
        n_satellites=args.satellites,
        horizon_days=args.days,
        image_shape=(args.size, args.size),
    )


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", choices=("sentinel2", "planet"), default="sentinel2",
        help="which synthetic dataset to simulate",
    )
    parser.add_argument(
        "--locations", default=None,
        help="comma-separated Sentinel-2 location letters (default: A,B)",
    )
    parser.add_argument(
        "--bands", default=None,
        help="comma-separated band names (default: B4,B11)",
    )
    parser.add_argument(
        "--satellites", type=int, default=16,
        help="constellation size for the planet dataset",
    )
    parser.add_argument(
        "--days", type=float, default=180.0, help="simulated horizon in days"
    )
    parser.add_argument(
        "--size", type=int, default=192, help="image edge in pixels"
    )
    parser.add_argument(
        "--gamma", type=float, default=0.3,
        help="bits per downloaded pixel (the paper's gamma)",
    )
    parser.add_argument(
        "--codec", choices=("model", "real"), default="model",
        help="fast rate model or full arithmetic-coded codec",
    )


def _result_row(policy: str, result) -> list:
    return [
        policy,
        f"{result.downlink_bytes / 1e3:.1f}",
        f"{result.mean_psnr():.1f}",
        f"{result.mean_downloaded_fraction():.2f}",
        f"{result.uplink_bytes / 1e3:.1f}",
        f"{len(result.delivered())}/{len(result.records)}",
    ]


_RESULT_HEADERS = [
    "policy", "downlink KB", "PSNR dB", "tiles downloaded",
    "uplink KB", "delivered",
]


def cmd_run(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    config = EarthPlusConfig(gamma_bpp=args.gamma, codec_backend=args.codec)
    result = run_policy(dataset, args.policy, config)
    print(
        format_table(
            _RESULT_HEADERS,
            [_result_row(args.policy, result)],
            title=f"{args.policy} on {dataset.name} "
            f"({dataset.n_satellites} satellites, {args.days:.0f} days)",
        )
    )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    config = EarthPlusConfig(gamma_bpp=args.gamma, codec_backend=args.codec)
    rows = []
    for policy in ("earthplus", "kodan", "satroi"):
        result = run_policy(dataset, policy, config)
        rows.append(_result_row(policy, result))
    print(
        format_table(
            _RESULT_HEADERS,
            rows,
            title=f"policy comparison on {dataset.name}",
        )
    )
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.analysis.calibration import evaluate_theta, profile_theta

    dataset = sentinel2_dataset(
        locations=[args.location],
        bands=[args.band],
        horizon_days=args.days * 2,
        image_shape=(args.size, args.size),
    )
    theta = profile_theta(
        dataset, args.location, args.band, 0.0, args.days
    )
    evaluation = evaluate_theta(
        dataset, args.location, args.band, theta, args.days, args.days * 2
    )
    print(
        format_table(
            ["quantity", "value"],
            [
                ["calibrated theta", f"{theta:.4f}"],
                ["transfer FPR", f"{evaluation.false_positive_rate:.3f}"],
                ["transfer recall", f"{evaluation.recall:.3f}"],
                ["evaluation pairs", evaluation.n_pairs],
            ],
            title=f"theta calibration on location {args.location}, "
            f"band {args.band} (paper default: 0.01)",
        )
    )
    return 0


def cmd_specs(args: argparse.Namespace) -> int:
    from repro.analysis.figures import tab01_specs

    print(
        format_table(
            ["Property", "Value"], tab01_specs(),
            title="Doves constellation specification (paper Table 1)",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Earth+ reproduction: simulations and experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="simulate one policy")
    _add_dataset_args(run_parser)
    run_parser.add_argument(
        "--policy", choices=POLICY_NAMES, default="earthplus"
    )
    run_parser.set_defaults(func=cmd_run)

    compare_parser = sub.add_parser(
        "compare", help="simulate Earth+ and both baselines"
    )
    _add_dataset_args(compare_parser)
    compare_parser.set_defaults(func=cmd_compare)

    calibrate_parser = sub.add_parser(
        "calibrate", help="profile the change threshold theta (paper §5)"
    )
    calibrate_parser.add_argument("--location", default="A")
    calibrate_parser.add_argument("--band", default="B4")
    calibrate_parser.add_argument("--days", type=float, default=180.0)
    calibrate_parser.add_argument("--size", type=int, default=192)
    calibrate_parser.set_defaults(func=cmd_calibrate)

    specs_parser = sub.add_parser("specs", help="print the Table-1 spec")
    specs_parser.set_defaults(func=cmd_specs)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
