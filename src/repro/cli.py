"""Command-line interface: run simulations and experiments from a shell.

Usage::

    python -m repro simulate --dataset sentinel2 --policy earthplus --gamma 0.3
    python -m repro sweep --policies earthplus,kodan --seeds 0,1 --workers 4
    python -m repro sweep --seeds 0,1,2,3 --workers 4 --resume
    python -m repro sweep --workers 4 --shards-per-scenario 2 --sync-days 1
    python -m repro sweep --workers 4 --shards-per-scenario 2 --sync-days 1 \\
        --trace sweep.json
    python -m repro trace summary sweep.json
    python -m repro query --policy earthplus --format csv
    python -m repro query --aggregate policy,gamma
    python -m repro run --dataset sentinel2 --policy earthplus --gamma 0.3
    python -m repro compare --dataset planet --satellites 16
    python -m repro calibrate --band B4
    python -m repro specs

``simulate`` and ``sweep`` are the scenario-layer interface: every run is a
declarative :class:`~repro.analysis.scenarios.ScenarioSpec`, sweeps execute
over one persistent worker pool (``--workers`` sizes it; add
``--shards-per-scenario`` to also split each epoch-synchronized scenario
across shard tasks on the same pool), and results print as an aligned
table, csv, or json (``--format``).  All options have small laptop-friendly
defaults.

Both commands go through the persistent experiment store (default
``~/.cache/repro``; point elsewhere with ``--store``/``REPRO_STORE``,
disable with ``--no-store``/``REPRO_STORE=off``): scenarios already in
the store are pure cache reads, new results persist as they land, and an
interrupted sweep re-run with ``--resume`` simulates only the missing
specs.  ``query`` inspects the store without simulating anything.

``--trace FILE`` on ``simulate``/``sweep`` records a span timeline —
merged across every worker and shard — as a Chrome trace-event file
(loadable in Perfetto or ``chrome://tracing``); ``repro trace``
summarizes, ranks, or converts a saved trace without re-running
anything.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager

from repro import perf
from repro.analysis.experiments import POLICY_NAMES, run_policy
from repro.analysis.scenarios import (
    DatasetSpec,
    ScenarioSpec,
    run_scenario,
    run_scenario_sharded,
    sweep_specs,
)
from repro.analysis.tables import format_rows, format_table, rows_payload
from repro.core.config import EarthPlusConfig
from repro.datasets.planet import planet_dataset
from repro.datasets.sentinel2 import SENTINEL2_LOCATIONS, sentinel2_dataset
from repro.obs import metrics, trace
from repro.obs import export as trace_export
from repro.obs.progress import SweepProgress
from repro.store.backend import QUERY_COLUMNS, default_store, open_store
from repro.store.runner import run_scenario_cached, run_scenarios_cached


def _build_dataset(args: argparse.Namespace):
    if args.dataset == "sentinel2":
        locations = (
            args.locations.split(",") if args.locations else ["A", "B"]
        )
        bands = args.bands.split(",") if args.bands else ["B4", "B11"]
        return sentinel2_dataset(
            locations=locations,
            bands=bands,
            horizon_days=args.days,
            image_shape=(args.size, args.size),
        )
    return planet_dataset(
        n_satellites=args.satellites,
        horizon_days=args.days,
        image_shape=(args.size, args.size),
    )


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", choices=("sentinel2", "planet"), default="sentinel2",
        help="which synthetic dataset to simulate",
    )
    parser.add_argument(
        "--locations", default=None,
        help="comma-separated Sentinel-2 location letters (default: A,B)",
    )
    parser.add_argument(
        "--bands", default=None,
        help="comma-separated band names (default: B4,B11)",
    )
    parser.add_argument(
        "--satellites", type=int, default=16,
        help="constellation size for the planet dataset",
    )
    parser.add_argument(
        "--days", type=float, default=180.0, help="simulated horizon in days"
    )
    parser.add_argument(
        "--size", type=int, default=192, help="image edge in pixels"
    )
    parser.add_argument(
        "--gamma", type=float, default=0.3,
        help="bits per downloaded pixel (the paper's gamma)",
    )
    parser.add_argument(
        "--codec",
        choices=("model", "real", "reference", "vectorized", "compiled"),
        default="model",
        help="fast rate model ('model') or the full arithmetic-coded codec "
        "on a registered engine: 'reference' (per-bit), 'vectorized' "
        "(batched numpy), 'compiled' (native kernels), or 'real' (best "
        "engine available) — all engines are bit-exact",
    )
    parser.add_argument(
        "--layers", type=int, default=1,
        help="quality layers per encoded image (>1 lets a constrained "
        "downlink shed trailing layers instead of dropping captures)",
    )


def _add_shard_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards", "--shards-per-scenario", dest="shards",
        type=int, default=None,
        help="shard each scenario's satellites across N shard tasks "
        "(default: REPRO_SIM_SHARDS or 1). Requires --sync-days > 0; "
        "results are byte-identical to a sequential run. Composes with "
        "--workers: both axes share one worker pool",
    )
    parser.add_argument(
        "--sync-days", type=float, default=0.0,
        help="ground-state synchronization cadence in days (sets "
        "config ground_sync_days; 0 = legacy continuous ground state). "
        "This changes scenario semantics, so it enters the store key — "
        "the shard count does not",
    )


def _resolve_shards(args: argparse.Namespace) -> int:
    """The effective shard count, validated against the sync cadence."""
    shards = args.shards if args.shards is not None else perf.sim_shards()
    if shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {shards}")
    if shards > 1 and args.sync_days <= 0:
        raise SystemExit(
            "--shards needs epoch-synchronized ground state; add "
            "--sync-days (e.g. --sync-days 1)"
        )
    return shards


def _add_store_args(
    parser: argparse.ArgumentParser, resumable: bool = False
) -> None:
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="experiment-store directory (default: REPRO_STORE or "
        "~/.cache/repro)",
    )
    parser.add_argument(
        "--no-store", action="store_true",
        help="bypass the experiment store entirely",
    )
    parser.add_argument(
        "--refresh", action="store_true",
        help="re-simulate even when the store already has the result "
        "(the fresh result overwrites the entry)",
    )
    if resumable:
        parser.add_argument(
            "--resume", action="store_true",
            help="continue an interrupted sweep: specs already in the "
            "store are reused, only the missing ones simulate (this is "
            "also the default store behavior; --resume makes the intent "
            "explicit and fails loudly if the store is disabled)",
        )


def _resolve_store(args: argparse.Namespace):
    """The store the flags select (None = disabled), or exit on conflict."""
    if args.no_store:
        if getattr(args, "resume", False):
            raise SystemExit("--resume needs the store; drop --no-store")
        if args.store is not None:
            raise SystemExit("--store and --no-store are mutually exclusive")
        return None
    if args.store is not None:
        return open_store(args.store)
    store = default_store()
    if store is None and getattr(args, "resume", False):
        raise SystemExit(
            "--resume needs the store, but REPRO_STORE disables it"
        )
    return store


def _add_trace_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a span timeline and write it to FILE as Chrome "
        "trace-event JSON, loadable in Perfetto / chrome://tracing (a "
        "FILE ending in .jsonl writes a plain span log instead). "
        "Composes with --workers/--shards-per-scenario: per-worker "
        "spans merge into one timeline, one track per worker. Results "
        "stay byte-identical with tracing on",
    )


@contextmanager
def _tracing(path: "str | None", command: str):
    """Record a span timeline around a command body and write it out.

    A no-op without ``--trace``.  The trace file lands even when the
    command fails partway — a truncated timeline is exactly what you
    want for diagnosing the failure — and the confirmation line goes to
    stderr so stdout stays machine-readable.
    """
    if path is None:
        yield
        return
    tracer = trace.enable_tracer()
    try:
        with trace.span(command):
            yield
    finally:
        trace.disable_tracer()
        spans = tracer.spans()
        if path.endswith(".jsonl"):
            count = trace_export.write_jsonl(path, spans)
        else:
            count = trace_export.write_chrome_trace(
                path,
                spans,
                dropped=tracer.dropped,
                counters=dict(metrics.counters().values) or None,
            )
        message = f"trace: {count} spans -> {path}"
        if tracer.dropped:
            message += f" ({tracer.dropped} dropped: ring buffer full)"
        print(message, file=sys.stderr)


#: Columns of every ``--profile`` timing table.
_PROFILE_COLUMNS = ["kind", "section", "seconds", "calls"]


def _emit_report(fmt: str, results, sections) -> None:
    """Print the results plus named extra sections in one format.

    Args:
        fmt: ``table``/``csv``/``json``.
        results: ``(columns, rows, title)`` for the main results.
        sections: ``[(name, columns, rows, title), ...]`` extras
            (profile rows, scheduler stats).

    Without sections the output is exactly the historical single
    :func:`format_rows` document — in particular ``--format json`` stays
    a top-level list, which scripts (and CI) parse.  With sections, json
    emits one structured object (``{"results": [...], "profile": [...],
    "scheduler": [...]}``) instead of concatenated documents, csv
    separates sections with a ``# name`` comment line, and table keeps
    the blank-line-separated tables.
    """
    columns, rows, title = results
    if fmt == "json" and sections:
        payload = {"results": rows_payload(columns, rows)}
        for name, section_columns, section_rows, _title in sections:
            payload[name] = rows_payload(section_columns, section_rows)
        print(json.dumps(payload, indent=2))
        return
    print(format_rows(columns, rows, fmt=fmt, title=title))
    for name, section_columns, section_rows, section_title in sections:
        print()
        if fmt == "csv":
            print(f"# {name}")
        print(
            format_rows(
                section_columns, section_rows, fmt=fmt, title=section_title
            )
        )


def _build_dataset_spec(args: argparse.Namespace) -> DatasetSpec:
    """The declarative twin of :func:`_build_dataset` (picklable)."""
    if args.dataset == "sentinel2":
        locations = (
            args.locations.split(",") if args.locations else ["A", "B"]
        )
        bands = args.bands.split(",") if args.bands else ["B4", "B11"]
        return DatasetSpec.of(
            "sentinel2",
            locations=locations,
            bands=bands,
            horizon_days=args.days,
            image_shape=(args.size, args.size),
        )
    return DatasetSpec.of(
        "planet",
        n_satellites=args.satellites,
        horizon_days=args.days,
        image_shape=(args.size, args.size),
    )


def _result_row(policy: str, result) -> list:
    return [
        policy,
        f"{result.downlink_bytes / 1e3:.1f}",
        f"{result.mean_psnr():.1f}",
        f"{result.mean_downloaded_fraction():.2f}",
        f"{result.uplink_bytes / 1e3:.1f}",
        f"{len(result.delivered())}/{len(result.records)}",
    ]


_RESULT_HEADERS = [
    "policy", "downlink KB", "PSNR dB", "tiles downloaded",
    "uplink KB", "delivered",
]


_SCENARIO_COLUMNS = [
    "scenario", "policy", "gamma", "seed", "downlink_kb", "psnr_db",
    "downloaded_fraction", "uplink_kb", "delivered", "records",
    "layers_shed", "dl_dropped",
]


def _scenario_dict(spec: ScenarioSpec, result) -> dict:
    """One sweep/simulate output row (plain data for any format)."""
    downlink_stats = result.downlink_stats
    return {
        "scenario": spec.resolved_label(),
        "policy": spec.policy,
        "gamma": spec.extras.get(
            "gamma",
            (spec.config.gamma_bpp if spec.config is not None else None),
        ),
        "seed": spec.seed,
        "downlink_kb": round(result.downlink_bytes / 1e3, 3),
        "psnr_db": round(result.mean_psnr(), 2),
        "downloaded_fraction": round(result.mean_downloaded_fraction(), 4),
        "uplink_kb": round(result.uplink_bytes / 1e3, 3),
        "delivered": len(result.delivered()),
        "records": len(result.records),
        "layers_shed": downlink_stats.get("layers_shed", 0),
        "dl_dropped": (
            downlink_stats.get("captures_deferred", 0)
            + downlink_stats.get("captures_dropped", 0)
        ),
    }


def _profile_rows(profiler) -> list[dict]:
    """Phase + kernel timing rows for ``simulate --profile``.

    Phases (``uplink``/``capture``/``downlink``/``ingest``, plus
    ``sync`` under epoch synchronization) tile the simulation loop;
    kernels (``imagery``/``codec``/``dwt``/``scoring``) run inside
    phases and break down where phase time goes.
    """
    return _classify_profile_rows(profiler.rows())


def _classify_profile_rows(raw_rows: list[dict]) -> list[dict]:
    phase_names = ("uplink", "capture", "downlink", "ingest", "sync")
    rows = []
    for entry in raw_rows:
        entry = dict(entry)
        if entry["section"] == "cpu_total":
            entry["kind"] = "total"  # shard-worker CPU time (sharded runs)
        elif entry["section"] in phase_names:
            entry["kind"] = "phase"
        else:
            entry["kind"] = "kernel"
        rows.append(entry)
    # Phases first (loop tiling), kernels after (breakdown), totals last;
    # within each group longest-running first — profiler rows are
    # already time-sorted.
    order = {"phase": 0, "kernel": 1, "total": 2}
    return sorted(rows, key=lambda r: order[r["kind"]])


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run one declarative scenario and print it in the chosen format."""
    shards = _resolve_shards(args)
    spec = ScenarioSpec(
        policy=args.policy,
        dataset=_build_dataset_spec(args),
        config=EarthPlusConfig(
            gamma_bpp=args.gamma,
            codec_backend=args.codec,
            n_quality_layers=args.layers,
            ground_sync_days=args.sync_days,
        ),
        uplink_bytes_per_contact=args.uplink_bytes,
        downlink_bytes_per_contact=args.downlink_bytes,
        downlink_severity=args.downlink_severity,
        seed=args.seed,
    )
    shard_profiles: list[tuple[int, tuple[int, ...], list]] = []
    profiler = None
    with _tracing(args.trace, "simulate"):
        if args.profile:
            # Serving a profile run from the store would time nothing;
            # profiling always simulates (and does not persist).
            if shards > 1:
                result = run_scenario_sharded(
                    spec,
                    shards=shards,
                    profile_sink=(
                        lambda index, sats, rows: shard_profiles.append(
                            (index, sats, rows)
                        )
                    ),
                )
            else:
                profiler = perf.enable_profiler()
                try:
                    result = run_scenario(spec)
                finally:
                    perf.disable_profiler()
        else:
            result = run_scenario_cached(
                spec,
                store=_resolve_store(args),
                refresh=args.refresh,
                shards=shards,
            )
    sections = []
    if profiler is not None:
        sections.append(
            (
                "profile",
                _PROFILE_COLUMNS,
                _profile_rows(profiler),
                "per-phase timing breakdown (kernels run inside phases)",
            )
        )
    if shard_profiles:
        # One merged table across the shard gang (profilers are a
        # monoid), not N disjoint per-shard tables.
        merged = perf.SimProfiler.identity()
        for _index, _satellites, rows in shard_profiles:
            merged = merged.merge(perf.SimProfiler.from_rows(rows))
        sections.append(
            (
                "profile",
                _PROFILE_COLUMNS,
                _classify_profile_rows(merged.rows()),
                f"merged timing breakdown across {len(shard_profiles)} "
                "shards (kernels run inside phases)",
            )
        )
    _emit_report(
        args.format,
        (
            _SCENARIO_COLUMNS,
            [_scenario_dict(spec, result)],
            f"{args.policy} on {args.dataset} ({args.days:.0f} days)",
        ),
        sections,
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a policies x seeds x gammas sweep, optionally in parallel."""
    policies = args.policies.split(",")
    for policy in policies:
        if policy not in POLICY_NAMES:
            raise SystemExit(
                f"unknown policy {policy!r}; expected one of {POLICY_NAMES}"
            )
    workers = args.workers if args.workers is not None else perf.sim_workers()
    if workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {workers}")
    shards = _resolve_shards(args)
    try:
        seeds = [int(s) for s in args.seeds.split(",")]
    except ValueError:
        raise SystemExit(f"--seeds must be comma-separated integers, got {args.seeds!r}")
    if args.gammas is None:
        gammas = [args.gamma]
    else:
        try:
            gammas = [float(g) for g in args.gammas.split(",")]
        except ValueError:
            raise SystemExit(
                f"--gammas must be comma-separated numbers, got {args.gammas!r}"
            )
    specs = sweep_specs(
        dataset=_build_dataset_spec(args),
        policies=policies,
        seeds=seeds,
        gammas=gammas,
        base_config=EarthPlusConfig(
            codec_backend=args.codec,
            n_quality_layers=args.layers,
            ground_sync_days=args.sync_days,
        ),
        uplink_bytes_per_contact=args.uplink_bytes,
        downlink_bytes_per_contact=args.downlink_bytes,
        downlink_severity=args.downlink_severity,
    )
    store = _resolve_store(args)
    scheduler_stats: list = []
    profile_sink = None
    merged_profile = [perf.SimProfiler.identity()]
    if args.profile:

        def profile_sink(rows):
            # Fold per-task (per-shard, per-worker) rows as they land.
            merged_profile[0] = merged_profile[0].merge(
                perf.SimProfiler.from_rows(rows)
            )

    progress = SweepProgress(total=len(specs))
    try:
        with _tracing(args.trace, "sweep"):
            sweep = run_scenarios_cached(
                specs,
                max_workers=workers,
                store=store,
                refresh=args.refresh,
                shards=shards,
                stats_sink=scheduler_stats.append if args.profile else None,
                profile_sink=profile_sink,
                progress=progress,
            )
    finally:
        progress.close()
    sections = []
    if args.profile:
        executed = len(sweep.executed) or len(specs)
        sections.append(
            (
                "profile",
                _PROFILE_COLUMNS,
                _classify_profile_rows(merged_profile[0].rows()),
                f"merged timing breakdown across {executed} simulated "
                "scenario(s) (kernels run inside phases)",
            )
        )
        if scheduler_stats:
            sections.append(
                (
                    "scheduler",
                    ["stat", "value"],
                    scheduler_stats[-1].rows(),
                    "sweep scheduler (one persistent worker pool)",
                )
            )
    _emit_report(
        args.format,
        (
            _SCENARIO_COLUMNS,
            [_scenario_dict(s, r) for s, r in zip(specs, sweep.results)],
            (
                f"sweep on {args.dataset}: {len(specs)} scenarios "
                f"({len(policies)} policies x {len(seeds)} seeds x "
                f"{len(gammas)} gammas)"
            ),
        ),
        sections,
    )
    if store is not None and args.format == "table":
        print(f"store: {sweep.summary()} ({store.root})")
    if args.profile and not scheduler_stats and args.format == "table":
        print(
            "scheduler: sweep ran in-process "
            "(no worker pool; nothing simulated in parallel)"
        )
    return 0


#: Group-by columns ``repro query --aggregate`` accepts.
_AGGREGATE_COLUMNS = ("policy", "dataset", "gamma", "seed", "label")


def _aggregate_rows(rows: list[dict], by: list[str]) -> list[dict]:
    """Group run rows and average their metrics (mean over the group)."""
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        groups.setdefault(tuple(row.get(c) for c in by), []).append(row)

    def mean(values: list) -> float | None:
        finite = [v for v in values if isinstance(v, (int, float))]
        return round(sum(finite) / len(finite), 4) if finite else None

    out = []
    for group_key in sorted(
        groups, key=lambda k: tuple(str(part) for part in k)
    ):
        members = groups[group_key]
        row = dict(zip(by, group_key))
        row["runs"] = len(members)
        for metric in (
            "psnr_db", "downloaded_fraction", "downlink_kb", "uplink_kb",
            "layers_shed", "updates_skipped", "dl_dropped",
        ):
            row[metric] = mean([m.get(metric) for m in members])
        out.append(row)
    return out


def cmd_query(args: argparse.Namespace) -> int:
    """Inspect the experiment store: list, filter, aggregate stored runs."""
    if args.store is not None:
        store = open_store(args.store)
    else:
        store = default_store()
    if store is None:
        raise SystemExit(
            "the experiment store is disabled (REPRO_STORE=off); "
            "pass --store PATH to query one explicitly"
        )
    if args.stats:
        stats = store.stats()
        print(
            format_rows(
                list(stats), [stats], fmt=args.format,
                title="experiment store",
            )
        )
        return 0
    rows = store.query(
        policy=args.policy,
        dataset=args.dataset,
        seed=args.seed,
        gamma=args.gamma,
        label=args.label,
        limit=args.limit,
    )
    if args.aggregate:
        by = args.aggregate.split(",")
        unknown = [c for c in by if c not in _AGGREGATE_COLUMNS]
        if unknown:
            raise SystemExit(
                f"unknown aggregate column(s) {unknown}; "
                f"expected a comma list of {_AGGREGATE_COLUMNS}"
            )
        rows = _aggregate_rows(rows, by)
        columns = by + [
            "runs", "psnr_db", "downloaded_fraction", "downlink_kb",
            "uplink_kb", "layers_shed", "updates_skipped", "dl_dropped",
        ]
        title = f"{len(rows)} group(s) by {','.join(by)} ({store.root})"
    else:
        columns = list(QUERY_COLUMNS)
        title = f"{len(rows)} stored run(s) ({store.root})"
    print(format_rows(columns, rows, fmt=args.format, title=title))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Inspect or convert a trace file saved by ``--trace``."""
    spans, meta = trace_export.read_trace(args.file)
    if args.action == "summary":
        title = f"{len(spans)} spans ({args.file})"
        dropped = meta.get("dropped", 0)
        if dropped:
            title += f" — {dropped} dropped at the ring buffer"
        print(
            format_rows(
                ["section", "seconds", "calls"],
                trace_export.summarize(spans),
                fmt=args.format,
                title=title,
            )
        )
        counter_values = meta.get("counters")
        if counter_values and args.format == "table":
            print()
            print(
                format_rows(
                    ["counter", "value"],
                    metrics.Counters(dict(counter_values)).rows(),
                    fmt="table",
                    title="counters (merged across workers)",
                )
            )
        return 0
    if args.action == "slowest":
        rows = trace_export.slowest(spans, limit=args.limit)
        print(
            format_rows(
                ["span", "seconds", "worker", "scenario", "shard", "epoch"],
                rows,
                fmt=args.format,
                title=(
                    f"slowest {len(rows)} of {len(spans)} spans "
                    f"({args.file})"
                ),
            )
        )
        return 0
    # export: rewrite into the format the output extension selects.
    if args.output is None:
        raise SystemExit("trace export needs --output FILE")
    if args.output.endswith(".jsonl"):
        count = trace_export.write_jsonl(args.output, spans)
    else:
        count = trace_export.write_chrome_trace(
            args.output,
            spans,
            dropped=meta.get("dropped", 0),
            counters=meta.get("counters"),
        )
    print(f"wrote {count} spans -> {args.output}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    config = EarthPlusConfig(
        gamma_bpp=args.gamma,
        codec_backend=args.codec,
        n_quality_layers=args.layers,
    )
    result = run_policy(dataset, args.policy, config)
    print(
        format_table(
            _RESULT_HEADERS,
            [_result_row(args.policy, result)],
            title=f"{args.policy} on {dataset.name} "
            f"({dataset.n_satellites} satellites, {args.days:.0f} days)",
        )
    )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    config = EarthPlusConfig(
        gamma_bpp=args.gamma,
        codec_backend=args.codec,
        n_quality_layers=args.layers,
    )
    rows = []
    for policy in ("earthplus", "kodan", "satroi"):
        result = run_policy(dataset, policy, config)
        rows.append(_result_row(policy, result))
    print(
        format_table(
            _RESULT_HEADERS,
            rows,
            title=f"policy comparison on {dataset.name}",
        )
    )
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.analysis.calibration import evaluate_theta, profile_theta

    dataset = sentinel2_dataset(
        locations=[args.location],
        bands=[args.band],
        horizon_days=args.days * 2,
        image_shape=(args.size, args.size),
    )
    theta = profile_theta(
        dataset, args.location, args.band, 0.0, args.days
    )
    evaluation = evaluate_theta(
        dataset, args.location, args.band, theta, args.days, args.days * 2
    )
    print(
        format_table(
            ["quantity", "value"],
            [
                ["calibrated theta", f"{theta:.4f}"],
                ["transfer FPR", f"{evaluation.false_positive_rate:.3f}"],
                ["transfer recall", f"{evaluation.recall:.3f}"],
                ["evaluation pairs", evaluation.n_pairs],
            ],
            title=f"theta calibration on location {args.location}, "
            f"band {args.band} (paper default: 0.01)",
        )
    )
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis: enforce the repo's repro contracts (see repro.lint).

    Exit codes are CI-friendly: 0 clean, 1 active findings, 2 internal
    error (unknown rule, missing path, unreadable file).
    """
    import repro.lint as lint
    from repro.errors import LintError
    from repro.lint.rules import storekey

    try:
        if args.update_golden:
            from pathlib import Path

            from repro.lint.engine import find_project_root

            root = find_project_root(
                [Path(p) for p in args.paths] or [Path.cwd()]
            )
            written = storekey.update_golden(root)
            print(f"wrote {written}")
            return 0
        select = args.select.split(",") if args.select else None
        ignore = args.ignore.split(",") if args.ignore else None
        result = lint.run_lint(args.paths, select=select, ignore=ignore)
    except (LintError, ValueError) as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    rules = lint.resolve_rules(select=select, ignore=ignore)
    if args.format == "json":
        print(lint.render_json(result, rules))
    else:
        print(
            lint.render_table(result, show_suppressed=args.show_suppressed)
        )
    return result.exit_code


def cmd_specs(args: argparse.Namespace) -> int:
    from repro.analysis.figures import tab01_specs

    print(
        format_table(
            ["Property", "Value"], tab01_specs(),
            title="Doves constellation specification (paper Table 1)",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Earth+ reproduction: simulations and experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate_parser = sub.add_parser(
        "simulate", help="run one scenario through the scenario layer"
    )
    _add_dataset_args(simulate_parser)
    simulate_parser.add_argument(
        "--policy", choices=POLICY_NAMES, default="earthplus"
    )
    simulate_parser.add_argument(
        "--seed", type=int, default=0, help="ground-segment seed"
    )
    simulate_parser.add_argument(
        "--uplink-bytes", type=int, default=None,
        help="uplink bytes per contact (default: Table-1 capacity)",
    )
    simulate_parser.add_argument(
        "--downlink-bytes", type=int, default=None,
        help="downlink bytes per contact (default: Table-1 capacity, "
        "which never constrains laptop-scale runs)",
    )
    simulate_parser.add_argument(
        "--downlink-severity", type=float, default=0.0,
        help="downlink-only bandwidth fluctuation severity (log-space "
        "sigma; 0 = constant downlink)",
    )
    simulate_parser.add_argument(
        "--format", choices=("table", "csv", "json"), default="table",
        help="output format",
    )
    simulate_parser.add_argument(
        "--profile", action="store_true",
        help="emit a per-phase timing breakdown (uplink/capture/ingest "
        "plus imagery/codec/dwt/scoring kernels) after the results; "
        "always simulates (never served from the store)",
    )
    _add_shard_args(simulate_parser)
    _add_store_args(simulate_parser)
    _add_trace_arg(simulate_parser)
    simulate_parser.set_defaults(func=cmd_simulate)

    sweep_parser = sub.add_parser(
        "sweep", help="run a policies x seeds x gammas scenario batch"
    )
    _add_dataset_args(sweep_parser)
    sweep_parser.add_argument(
        "--policies", default="earthplus,kodan,satroi",
        help="comma-separated policy names",
    )
    sweep_parser.add_argument(
        "--seeds", default="0", help="comma-separated ground-segment seeds"
    )
    sweep_parser.add_argument(
        "--gammas", default=None,
        help="comma-separated bits-per-pixel settings (default: --gamma)",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool size (default: REPRO_SIM_WORKERS or 1, i.e. "
        "in-process). Workers spawn once per sweep and run both whole "
        "scenarios and scenario shards (--shards-per-scenario)",
    )
    sweep_parser.add_argument(
        "--uplink-bytes", type=int, default=None,
        help="uplink bytes per contact (default: Table-1 capacity)",
    )
    sweep_parser.add_argument(
        "--downlink-bytes", type=int, default=None,
        help="downlink bytes per contact (default: Table-1 capacity)",
    )
    sweep_parser.add_argument(
        "--downlink-severity", type=float, default=0.0,
        help="downlink-only bandwidth fluctuation severity",
    )
    sweep_parser.add_argument(
        "--format", choices=("table", "csv", "json"), default="table",
        help="output format",
    )
    sweep_parser.add_argument(
        "--profile", action="store_true",
        help="print per-sweep scheduler statistics (tasks run/stolen, "
        "worker spawns, barrier-idle seconds) after the results",
    )
    _add_shard_args(sweep_parser)
    _add_store_args(sweep_parser, resumable=True)
    _add_trace_arg(sweep_parser)
    sweep_parser.set_defaults(func=cmd_sweep)

    trace_parser = sub.add_parser(
        "trace",
        help="inspect or convert a trace file saved by --trace",
    )
    trace_parser.add_argument(
        "action", choices=("summary", "slowest", "export"),
        help="summary: per-section totals (matches the merged --profile "
        "table); slowest: longest individual spans with attribution; "
        "export: rewrite into another trace format",
    )
    trace_parser.add_argument(
        "file", help="a trace written by --trace (Chrome JSON or .jsonl)"
    )
    trace_parser.add_argument(
        "--limit", type=int, default=10,
        help="rows to show for 'slowest' (default: 10)",
    )
    trace_parser.add_argument(
        "--output", "-o", default=None, metavar="FILE",
        help="output file for 'export': .jsonl writes a span log, "
        "anything else Chrome trace-event JSON",
    )
    trace_parser.add_argument(
        "--format", choices=("table", "csv", "json"), default="table",
        help="output format (summary/slowest)",
    )
    trace_parser.set_defaults(func=cmd_trace)

    query_parser = sub.add_parser(
        "query",
        help="inspect the experiment store without simulating anything",
    )
    query_parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="experiment-store directory (default: REPRO_STORE or "
        "~/.cache/repro)",
    )
    query_parser.add_argument(
        "--policy", choices=POLICY_NAMES, default=None,
        help="only runs of this policy",
    )
    query_parser.add_argument(
        "--dataset", choices=("sentinel2", "planet"), default=None,
        help="only runs on this dataset kind",
    )
    query_parser.add_argument(
        "--seed", type=int, default=None, help="only runs with this seed"
    )
    query_parser.add_argument(
        "--gamma", type=float, default=None,
        help="only runs with this gamma (bits per downloaded pixel)",
    )
    query_parser.add_argument(
        "--label", default=None,
        help="only runs whose label contains this substring",
    )
    query_parser.add_argument(
        "--limit", type=int, default=None, help="at most this many rows"
    )
    query_parser.add_argument(
        "--aggregate", default=None, metavar="COLS",
        help="group rows by a comma list of "
        f"{_AGGREGATE_COLUMNS} and average the metrics",
    )
    query_parser.add_argument(
        "--stats", action="store_true",
        help="print store totals (entries, payload size, budget) instead",
    )
    query_parser.add_argument(
        "--format", choices=("table", "csv", "json"), default="table",
        help="output format",
    )
    query_parser.set_defaults(func=cmd_query)

    run_parser = sub.add_parser("run", help="simulate one policy")
    _add_dataset_args(run_parser)
    run_parser.add_argument(
        "--policy", choices=POLICY_NAMES, default="earthplus"
    )
    run_parser.set_defaults(func=cmd_run)

    compare_parser = sub.add_parser(
        "compare", help="simulate Earth+ and both baselines"
    )
    _add_dataset_args(compare_parser)
    compare_parser.set_defaults(func=cmd_compare)

    calibrate_parser = sub.add_parser(
        "calibrate", help="profile the change threshold theta (paper §5)"
    )
    calibrate_parser.add_argument("--location", default="A")
    calibrate_parser.add_argument("--band", default="B4")
    calibrate_parser.add_argument("--days", type=float, default=180.0)
    calibrate_parser.add_argument("--size", type=int, default=192)
    calibrate_parser.set_defaults(func=cmd_calibrate)

    lint_parser = sub.add_parser(
        "lint",
        help="static analysis: enforce determinism/env-flag/monoid/"
        "store-key/fork-safety contracts",
    )
    lint_parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint_parser.add_argument(
        "--format", choices=["table", "json"], default="table"
    )
    lint_parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule codes/names to run (default: all)",
    )
    lint_parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule codes/names to skip",
    )
    lint_parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also list findings silenced by `# repro: allow(...)`",
    )
    lint_parser.add_argument(
        "--update-golden", action="store_true",
        help="re-snapshot the RPR004 store-key golden from the current "
        "tree and exit",
    )
    lint_parser.set_defaults(func=cmd_lint)

    specs_parser = sub.add_parser("specs", help="print the Table-1 spec")
    specs_parser.set_defaults(func=cmd_specs)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
