"""Named monotonic counters with a monoid merge.

Every layer counts through one process-global :class:`Counters`
instance (:func:`counters`): the store bumps ``store.hit`` /
``store.miss`` / ``store.evict`` / ``store.put_bytes``, the sweep
scheduler bumps ``sched.steal`` / ``sched.spawn`` / ``sched.barrier_idle_s``,
``DownlinkPhase`` bumps ``downlink.shed`` / ``downlink.defer`` /
``downlink.drop``, and the codec registry bumps ``codec.resolve.*``.

Counters follow the same algebra as every other per-worker partial in
this codebase (``RunResult``, ``SimProfiler``): :meth:`Counters.merge`
is associative with :meth:`Counters.identity` as the unit, so worker
deltas shipped over the scheduler's result protocol fold into one
sweep-wide view in any order.  Values are monotonic — only
:meth:`Counters.inc` with a non-negative amount — which is what makes
:meth:`Counters.diff` against an earlier snapshot a valid per-task
delta.
"""

from __future__ import annotations

__all__ = ["Counters", "counters", "reset_counters"]


class Counters:
    """A bag of named monotonic counters.

    Values are ints or floats (e.g. ``sched.barrier_idle_s`` accumulates
    seconds); names are dotted strings namespaced by subsystem.
    """

    def __init__(self, values: dict | None = None) -> None:
        self.values: dict = dict(values) if values else {}

    @classmethod
    def identity(cls) -> "Counters":
        """The merge unit: no counters."""
        return cls()

    def inc(self, name: str, amount=1) -> None:
        """Bump ``name`` by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {name!r}: negative increment {amount}")
        if amount:
            self.values[name] = self.values.get(name, 0) + amount

    def get(self, name: str, default=0):
        return self.values.get(name, default)

    def merge(self, other: "Counters") -> "Counters":
        """Pointwise sum with ``other`` — associative, identity-unital."""
        merged = dict(self.values)
        for name, value in other.values.items():
            merged[name] = merged.get(name, 0) + value
        return Counters(merged)

    def merge_in(self, other: "Counters") -> None:
        """In-place :meth:`merge` (the driver folding worker deltas)."""
        for name, value in other.values.items():
            self.values[name] = self.values.get(name, 0) + value

    def snapshot(self) -> "Counters":
        """An independent copy, usable later as a :meth:`diff` baseline."""
        return Counters(self.values)

    def diff(self, baseline: "Counters") -> "Counters":
        """Counters accumulated since ``baseline`` (a prior snapshot)."""
        delta = {}
        for name, value in self.values.items():
            change = value - baseline.values.get(name, 0)
            if change:
                delta[name] = change
        return Counters(delta)

    def rows(self) -> list[dict]:
        """``[{"counter", "value"}]`` sorted by name, for table output."""
        return [
            {"counter": name, "value": self.values[name]}
            for name in sorted(self.values)
        ]

    def __bool__(self) -> bool:
        return bool(self.values)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Counters):
            return NotImplemented
        return self.values == other.values

    def __repr__(self) -> str:
        return f"Counters({self.values!r})"


#: The process-global counter bag all subsystems bump.
_COUNTERS = Counters()


def counters() -> Counters:
    """The process-global :class:`Counters` instance."""
    return _COUNTERS


def reset_counters() -> Counters:
    """Replace the process-global bag with a fresh one (tests, workers)."""
    global _COUNTERS
    _COUNTERS = Counters()
    return _COUNTERS
