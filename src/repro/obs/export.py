"""Trace export: Chrome trace-event JSON and a JSONL span log.

The Chrome trace-event format (``{"traceEvents": [...]}`` with ``"X"``
complete events) loads directly in Perfetto (https://ui.perfetto.dev)
and ``chrome://tracing``.  The exporter lays the merged sweep timeline
out as one track per worker — the driver first, then ``worker 0..N-1``
by the ``worker`` span attribute — so spec tasks, shard gangs, and
epoch-barrier waits line up visually across the pool.

``read_trace`` accepts both formats back, so the ``repro trace``
subcommand (``summary`` / ``slowest`` / ``export``) works on either
artifact.  ``summarize`` reproduces the profiler's per-section totals
(name, calls, seconds) from the spans alone — the acceptance check that
the trace and the merged ``--profile`` table agree.
"""

from __future__ import annotations

import json

__all__ = [
    "read_trace",
    "slowest",
    "summarize",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]

#: Keys that pick a span's track rather than describe it.
_TRACK_KEY = "worker"

#: pid used for all tracks — the timeline is one merged logical process.
_PID = 1


def _track_of(attrs: dict | None):
    """The track id for a span: its ``worker`` attribute, or the driver."""
    if attrs and _TRACK_KEY in attrs:
        return attrs[_TRACK_KEY]
    return None  # driver


def to_chrome_trace(
    spans,
    dropped: int = 0,
    counters: dict | None = None,
) -> dict:
    """Build a Chrome trace-event document from span tuples.

    Args:
        spans: ``(name, begin_s, end_s, attrs)`` tuples (any order).
        dropped: Ring-buffer drop count; recorded in ``otherData`` so a
            clipped timeline says so.
        counters: Optional merged counter values, recorded in
            ``otherData`` for one-file debuggability.

    Returns:
        A JSON-serializable dict.  Timestamps are microseconds relative
        to the earliest span, one thread (tid) per worker track.
    """
    spans = sorted(spans, key=lambda s: s[1])
    t0 = spans[0][1] if spans else 0.0

    # Stable track order: driver first, then workers by id.
    tracks = sorted(
        {_track_of(s[3]) for s in spans},
        key=lambda w: (-1, "") if w is None else (0, str(w)),
    )
    tids = {track: tid for tid, track in enumerate(tracks)}

    events = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "repro sweep"},
        }
    ]
    for track, tid in tids.items():
        label = "driver" if track is None else f"worker {track}"
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _PID,
                "tid": tid,
                "args": {"name": label},
            }
        )
    for name, begin_s, end_s, attrs in spans:
        event = {
            "ph": "X",
            "name": name,
            "pid": _PID,
            "tid": tids[_track_of(attrs)],
            "ts": round((begin_s - t0) * 1e6, 3),
            "dur": round((end_s - begin_s) * 1e6, 3),
        }
        if attrs:
            event["args"] = attrs
        events.append(event)

    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"format": "repro-trace-v1", "dropped": dropped},
    }
    if counters:
        doc["otherData"]["counters"] = counters
    return doc


def write_chrome_trace(
    path: str,
    spans,
    dropped: int = 0,
    counters: dict | None = None,
) -> int:
    """Write a Perfetto-loadable trace file; returns the span count."""
    spans = list(spans)
    doc = to_chrome_trace(spans, dropped=dropped, counters=counters)
    with open(path, "w") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return len(spans)


def write_jsonl(path: str, spans) -> int:
    """Write one span per line (``{"name", "begin_s", "end_s", ...attrs}``)."""
    count = 0
    with open(path, "w") as fh:
        for name, begin_s, end_s, attrs in sorted(spans, key=lambda s: s[1]):
            row = {"name": name, "begin_s": begin_s, "end_s": end_s}
            if attrs:
                row.update(attrs)
            fh.write(json.dumps(row) + "\n")
            count += 1
    return count


def read_trace(path: str):
    """Load spans back from either export format.

    Returns:
        ``(spans, meta)`` — span tuples ``(name, begin_s, end_s, attrs)``
        sorted by begin time, and a metadata dict (``dropped``,
        ``counters`` when present; empty for JSONL).
    """
    with open(path) as fh:
        text = fh.read()
    # Sniff by parsing, not by first character: a JSONL span log's lines
    # start with "{" exactly like a Chrome document does, but only the
    # Chrome file is one JSON value covering the whole text.
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    spans = []
    if isinstance(doc, dict) and "traceEvents" in doc:
        for event in doc["traceEvents"]:
            if event.get("ph") != "X":
                continue
            begin_s = event["ts"] / 1e6
            spans.append(
                (
                    event["name"],
                    begin_s,
                    begin_s + event["dur"] / 1e6,
                    event.get("args") or None,
                )
            )
        meta = dict(doc.get("otherData") or {})
    else:
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            try:
                name = row.pop("name")
                begin_s = row.pop("begin_s")
                end_s = row.pop("end_s")
            except (KeyError, AttributeError):
                raise ValueError(
                    f"{path}: neither a Chrome trace-event file nor a "
                    "span-log line"
                ) from None
            spans.append((name, begin_s, end_s, row or None))
        meta = {}
    spans.sort(key=lambda s: s[1])
    return spans, meta


def summarize(spans) -> list[dict]:
    """Per-section totals from spans, in the profiler's row shape.

    Returns:
        ``[{"section", "seconds", "calls"}]`` sorted by seconds
        descending — the same rows ``SimProfiler.rows()`` produces, so
        ``repro trace summary`` agrees with the merged ``--profile``
        table for the same run.
    """
    seconds: dict = {}
    calls: dict = {}
    for name, begin_s, end_s, _attrs in spans:
        seconds[name] = seconds.get(name, 0.0) + (end_s - begin_s)
        calls[name] = calls.get(name, 0) + 1
    return [
        {"section": name, "seconds": round(seconds[name], 6), "calls": calls[name]}
        for name in sorted(seconds, key=lambda n: seconds[n], reverse=True)
    ]


def slowest(spans, limit: int = 10) -> list[dict]:
    """The individual longest spans, with attribution columns.

    Returns:
        ``[{"span", "seconds", "worker", "scenario", "shard", "epoch"}]``
        sorted by duration descending, at most ``limit`` rows.
    """
    ranked = sorted(spans, key=lambda s: s[2] - s[1], reverse=True)[:limit]
    rows = []
    for name, begin_s, end_s, attrs in ranked:
        attrs = attrs or {}
        rows.append(
            {
                "span": name,
                "seconds": round(end_s - begin_s, 6),
                "worker": attrs.get("worker", "driver"),
                "scenario": attrs.get("scenario", ""),
                "shard": attrs.get("shard", ""),
                "epoch": attrs.get("epoch", ""),
            }
        )
    return rows
