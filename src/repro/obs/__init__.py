"""Unified telemetry plane: span tracing, counters, trace export.

Three small facilities every layer of the stack reports through:

``repro.obs.trace``
    A span-based tracer: :func:`~repro.obs.trace.span` records begin/end
    on a monotonic clock into a bounded per-process ring buffer, with
    worker/scenario/shard/epoch attribution carried by an ambient
    context.  Near-zero cost when disabled, so hot kernels stay
    instrumented unconditionally (``perf.profiled`` is now a
    compatibility shim over it).
``repro.obs.metrics``
    Named monotonic counters with a monoid ``merge()`` — the store
    (hit/miss/eviction/bytes), the sweep scheduler (steals/spawns/
    barrier idle), the downlink phase (shed/defer/drop), and the codec
    registry all count through one process-global instance; worker
    deltas ship back over the scheduler protocol and merge associatively.
``repro.obs.export``
    Chrome trace-event JSON (loadable in Perfetto / chrome://tracing,
    one track per worker) and a JSONL span log, plus the readers the
    ``repro trace`` CLI subcommand summarizes saved traces with.

Telemetry is a zero-perturbation overlay: tracing and counting never
change simulation results — a traced sweep is pickle-byte-identical to
an untraced one (differential-tested in ``tests/obs``).
"""

from repro.obs.metrics import Counters, counters, reset_counters
from repro.obs.progress import SweepProgress
from repro.obs.trace import (
    Tracer,
    active_tracer,
    clear_context,
    current_context,
    disable_tracer,
    enable_tracer,
    reset_context,
    set_context,
    span,
    trace_context,
)

__all__ = [
    "Counters",
    "counters",
    "reset_counters",
    "SweepProgress",
    "Tracer",
    "active_tracer",
    "clear_context",
    "current_context",
    "disable_tracer",
    "enable_tracer",
    "reset_context",
    "set_context",
    "span",
    "trace_context",
]
