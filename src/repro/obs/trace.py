"""Span tracing: begin/end timestamps in a bounded per-process ring buffer.

:func:`span` is the one instrumentation point the whole stack shares.  It
is simultaneously the profiler's section timer (when a
:class:`~repro.perf.SimProfiler` is installed the span's duration is
added to its section) and the tracer's timeline recorder (when a
:class:`Tracer` is enabled the span lands in its ring buffer with full
begin/end timestamps and attribution).  ``perf.profiled`` is a
compatibility shim over it, so every pre-existing ``profiled("dwt")``
call site emits spans for free.

Design constraints, in order:

* **Zero perturbation.**  Spans only read the clock; simulation results
  are byte-identical with tracing on or off (differential-tested).
* **Near-zero cost when disabled.**  With neither a tracer nor a
  profiler installed, :func:`span` returns a shared no-op context
  manager after two module-attribute reads — cheap enough to leave hot
  kernels instrumented unconditionally.
* **Bounded memory.**  The buffer is a fixed-capacity ring; overflow
  overwrites the oldest span and counts ``dropped`` so exports can say
  the timeline is clipped rather than silently lying.
* **Mergeable.**  Span records are plain picklable tuples; per-worker
  buffers ship back over the scheduler's result protocol and
  :meth:`Tracer.extend` folds them — associatively, like every other
  per-worker partial in this codebase — into one sweep-wide timeline.

Attribution rides on an ambient per-process context
(:func:`set_context` / :func:`trace_context`): the scheduler workers set
``worker``/``scenario``/``shard`` once per task and the epoch loop sets
``epoch`` once per epoch, so per-visit spans stay attribute-free (and
therefore cheap) while every recorded span still knows where it ran.

Timestamps are ``time.perf_counter()``, which on Linux is the system-wide
``CLOCK_MONOTONIC`` — forked worker processes and the driver share one
timebase, so merged timelines need no clock reconciliation.
"""

from __future__ import annotations

import os
import time

from repro import perf

__all__ = [
    "DEFAULT_CAPACITY",
    "Tracer",
    "active_tracer",
    "clear_context",
    "current_context",
    "disable_tracer",
    "enable_tracer",
    "reset_context",
    "set_context",
    "span",
    "trace_context",
]

#: Ring-buffer capacity when :func:`enable_tracer` is not told otherwise.
#: At ~100 bytes/span this bounds a worker's buffer to a few megabytes.
DEFAULT_CAPACITY = 65536


class Tracer:
    """A bounded ring buffer of finished spans.

    Span records are plain tuples ``(name, begin_s, end_s, attrs)`` —
    ``attrs`` is a dict (ambient context merged with per-span attributes)
    or None.  Records are picklable by construction so worker buffers
    can ship over the scheduler's result queue.

    Args:
        capacity: Maximum retained spans; older spans are overwritten
            (and counted in :attr:`dropped`) once the buffer is full.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.pid = os.getpid()
        self.dropped = 0
        self._buffer: list[tuple] = []
        self._next = 0  # overwrite cursor once the buffer is full

    def add(
        self,
        name: str,
        begin_s: float,
        end_s: float,
        attrs: dict | None = None,
    ) -> None:
        """Record one finished span (oldest span evicted at capacity)."""
        record = (name, begin_s, end_s, attrs)
        if len(self._buffer) < self.capacity:
            self._buffer.append(record)
        else:
            self._buffer[self._next] = record
            self._next = (self._next + 1) % self.capacity
            self.dropped += 1

    def extend(self, spans, dropped: int = 0) -> None:
        """Fold another buffer's spans (a worker partial) into this one.

        Folding is associative and order-only — exporters sort by begin
        time, so the merged timeline is independent of arrival order.

        Args:
            spans: Span tuples as produced by :meth:`spans`.
            dropped: The source buffer's own drop count, carried over so
                the merged timeline still reports clipping.
        """
        for record in spans:
            self.add(*record)
        self.dropped += dropped

    def spans(self) -> list[tuple]:
        """Retained spans, oldest first."""
        if self._next == 0:
            return list(self._buffer)
        return self._buffer[self._next :] + self._buffer[: self._next]

    def __len__(self) -> int:
        return len(self._buffer)


#: The installed per-process tracer (None = tracing disabled).
_TRACER: Tracer | None = None

#: Ambient attribution merged into every recorded span.
# repro: allow(RPR005): per-process divergence is the feature — each worker sets its own worker/scenario/shard attribution, and span buffers ride the scheduler result protocol back to the driver explicitly
_CONTEXT: dict = {}


def enable_tracer(capacity: int = DEFAULT_CAPACITY) -> Tracer:
    """Install (and return) a fresh process-wide tracer."""
    global _TRACER
    _TRACER = Tracer(capacity=capacity)
    return _TRACER


def disable_tracer() -> None:
    """Remove the installed tracer (spans return to no-ops)."""
    global _TRACER
    _TRACER = None


def active_tracer() -> Tracer | None:
    """The installed tracer, if any."""
    return _TRACER


def set_context(**attrs) -> None:
    """Set ambient attribution keys merged into every recorded span.

    Keys set to None are removed — ``set_context(shard=None)`` clears
    the shard attribution rather than recording a null attribute.
    """
    for name, value in attrs.items():
        if value is None:
            _CONTEXT.pop(name, None)
        else:
            _CONTEXT[name] = value


def clear_context(*names: str) -> None:
    """Remove the named ambient attribution keys (missing keys are fine)."""
    for name in names:
        _CONTEXT.pop(name, None)


def reset_context() -> None:
    """Drop all ambient attribution (workers call this between tasks)."""
    _CONTEXT.clear()


def current_context() -> dict:
    """A copy of the ambient attribution (for tests and exporters)."""
    return dict(_CONTEXT)


class trace_context:
    """Context manager setting ambient attribution for a block.

    Previous values (including absence) are restored on exit, so nested
    blocks compose::

        with trace_context(scenario="earthplus/s0"):
            with trace_context(epoch=3):
                ...
    """

    def __init__(self, **attrs) -> None:
        self._attrs = attrs
        self._saved: dict = {}

    def __enter__(self) -> None:
        sentinel = self._saved
        for name, value in self._attrs.items():
            self._saved[name] = _CONTEXT.get(name, sentinel)
            if value is None:
                _CONTEXT.pop(name, None)
            else:
                _CONTEXT[name] = value

    def __exit__(self, exc_type, exc, tb) -> bool:
        sentinel = self._saved
        for name, previous in self._saved.items():
            if previous is sentinel:
                _CONTEXT.pop(name, None)
            else:
                _CONTEXT[name] = previous
        self._saved = {}
        return False


class _NullSpan:
    """Shared no-op context manager: the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """One active span: timestamps on entry/exit, recorded on exit.

    The profiler and tracer are re-read at exit (not captured at entry)
    so a span that straddles an enable/disable records consistently with
    the state at its end — the same call-time semantics as every other
    repro switch.
    """

    __slots__ = ("name", "attrs", "begin_s")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_LiveSpan":
        self.begin_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_s = time.perf_counter()
        profiler = perf._PROFILER
        if profiler is not None:
            profiler.add(self.name, end_s - self.begin_s)
        tracer = _TRACER
        if tracer is not None:
            attrs = self.attrs
            if _CONTEXT:
                attrs = {**_CONTEXT, **attrs} if attrs else dict(_CONTEXT)
            tracer.add(self.name, self.begin_s, end_s, attrs or None)
        return False


def span(name: str, **attrs):
    """Time a block, feeding the profiler and/or tracer when installed.

    Args:
        name: Section/span name (``uplink``, ``dwt``, ``spec <label>``...).
        attrs: Per-span attributes recorded with the span (merged over
            the ambient context; tracing only — the profiler keys by
            name alone).

    Returns:
        A context manager.  With neither facility installed this is a
        shared no-op instance; the block runs untimed at near-zero cost.
    """
    if _TRACER is None and perf._PROFILER is None:
        return _NULL_SPAN
    return _LiveSpan(name, attrs)
