"""Live single-line sweep progress meter on stderr.

One ``\\r``-rewritten line — ``sweep 7/12 specs · 3 in-flight · 2 cached
· ETA 41s`` — active only when the stream is a TTY (piped/CI runs stay
byte-clean; results always go to stdout, the meter to stderr).  The
meter is pure display: it observes scheduler/runner callbacks and never
feeds anything back, so it cannot perturb results.

ETA extrapolates from *executed* spec completions only — cache hits
land in milliseconds and would otherwise make the estimate absurdly
optimistic for the specs still to simulate.
"""

from __future__ import annotations

import sys
import time

__all__ = ["SweepProgress"]

#: Minimum seconds between unforced redraws (task churn is bursty).
_REDRAW_S = 0.1


class SweepProgress:
    """Sweep progress state plus its one-line TTY rendering.

    The scheduler/runner call the update methods unconditionally; every
    method is a cheap counter bump plus (when enabled and due) a redraw,
    so a disabled meter costs almost nothing.

    Args:
        total: Number of specs in the sweep.
        stream: Output stream (defaults to ``sys.stderr``).
        enabled: Force the meter on/off; default follows
            ``stream.isatty()``.
    """

    def __init__(self, total: int, stream=None, enabled: bool | None = None):
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            enabled = bool(isatty and isatty())
        self.enabled = enabled
        self.total = total
        self.done = 0
        self.cached = 0
        self.inflight = 0
        self._started = time.perf_counter()
        self._last_draw = 0.0
        self._width = 0

    # -- update hooks ---------------------------------------------------
    def add_cached(self, count: int = 1) -> None:
        """Specs served from the experiment store (no simulation)."""
        self.cached += count
        self.done += count
        self._draw(force=True)

    def task_started(self) -> None:
        """A spec/shard task was dequeued by a worker."""
        self.inflight += 1
        self._draw()

    def task_finished(self) -> None:
        """A spec/shard task completed."""
        self.inflight = max(0, self.inflight - 1)
        self._draw()

    def spec_done(self) -> None:
        """A whole scenario's result was delivered (merged, if sharded)."""
        self.done += 1
        self._draw(force=True)

    # -- rendering ------------------------------------------------------
    def _eta_s(self) -> float | None:
        executed = self.done - self.cached
        remaining = self.total - self.done
        if executed <= 0 or remaining <= 0:
            return None
        elapsed = time.perf_counter() - self._started
        return remaining * elapsed / executed

    def render(self) -> str:
        """The current meter line (exposed for tests)."""
        parts = [f"sweep {self.done}/{self.total} specs"]
        if self.inflight:
            parts.append(f"{self.inflight} in-flight")
        if self.cached:
            parts.append(f"{self.cached} cached")
        eta = self._eta_s()
        if eta is not None:
            parts.append(f"ETA {eta:.0f}s")
        return " · ".join(parts)

    def _draw(self, force: bool = False) -> None:
        if not self.enabled:
            return
        now = time.perf_counter()
        if not force and now - self._last_draw < _REDRAW_S:
            return
        self._last_draw = now
        line = self.render()
        pad = " " * max(0, self._width - len(line))
        self._width = len(line)
        self.stream.write("\r" + line + pad)
        self.stream.flush()

    def close(self) -> None:
        """Erase the meter line (call before printing final output)."""
        if not self.enabled:
            return
        self.stream.write("\r" + " " * self._width + "\r")
        self.stream.flush()
        self.enabled = False

    def __enter__(self) -> "SweepProgress":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
